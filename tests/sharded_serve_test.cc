// Sharded serving tests (serve/shard_router.h, serve/sharded_server.h):
// partition exactness units, manifest round trips, randomized differential
// runs proving a ShardedQueryServer at N ∈ {1,2,4} serves answers
// bit-identical to one unsharded QueryServer over the same accepted update
// stream, label-based shard pruning, and fork+SIGKILL crash recovery of a
// sharded durability directory back to the per-shard durable prefixes.

#include "serve/sharded_server.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include "common/random.h"
#include "graph/data_graph.h"
#include "graph/graph_builder.h"
#include "index/dk_index.h"
#include "io/fs_util.h"
#include "query/evaluator.h"
#include "serve/query_server.h"
#include "serve/shard_router.h"
#include "tests/test_util.h"

#if defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define DKI_UNDER_TSAN 1
#endif
#endif
#if defined(__SANITIZE_THREAD__)
#define DKI_UNDER_TSAN 1
#endif

namespace dki {
namespace {

std::string FreshDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "dki_sharded_" + name + "_" +
                    std::to_string(::getpid());
  if (PathExists(dir)) {
    std::string cmd = "rm -rf '" + dir + "'";
    EXPECT_EQ(std::system(cmd.c_str()), 0);
  }
  std::string error;
  EXPECT_TRUE(EnsureDir(dir, &error)) << error;
  return dir;
}

// A graph the partitioner can actually spread: `subtrees` independent
// subtrees under the root, each with random internal tree edges plus a few
// extra intra-subtree cross edges. No edge ever crosses two subtrees, so
// the router's edge-closure keeps one group per subtree for every shard
// count, and any intra-subtree edge op routes identically at N ∈ {1,2,4}.
// `ranges` receives each subtree's [first, last] global-id range.
DataGraph MakeShardableGraph(int subtrees, int per_subtree, int extra_edges,
                             Rng* rng,
                             std::vector<std::pair<NodeId, NodeId>>* ranges) {
  static const char* kNames[] = {"a", "b", "c", "d", "e"};
  DataGraph g;
  for (int t = 0; t < subtrees; ++t) {
    NodeId first = g.AddNode(kNames[t % 5]);
    g.AddEdge(g.root(), first);
    for (int i = 1; i < per_subtree; ++i) {
      NodeId node = g.AddNode(kNames[rng->UniformInt(0, 4)]);
      NodeId parent = first + static_cast<NodeId>(rng->UniformInt(0, i - 1));
      g.AddEdge(parent, node);
    }
    for (int e = 0; e < extra_edges; ++e) {
      NodeId u = first + static_cast<NodeId>(rng->UniformInt(0, per_subtree - 1));
      NodeId v = first + static_cast<NodeId>(rng->UniformInt(0, per_subtree - 1));
      if (u != v && !g.HasEdge(u, v)) g.AddEdge(u, v);
    }
    if (ranges != nullptr) {
      ranges->push_back({first, first + per_subtree - 1});
    }
  }
  return g;
}

// An intra-subtree add/remove stream: every op's endpoints share a subtree,
// so every router (any shard count) accepts every op. `track` ends up as
// the ground-truth graph after the whole stream.
std::vector<UpdateOp> MakeIntraSubtreeOps(
    const std::vector<std::pair<NodeId, NodeId>>& ranges, int count,
    DataGraph* track, Rng* rng) {
  std::vector<UpdateOp> ops;
  while (static_cast<int>(ops.size()) < count) {
    const auto& range =
        ranges[static_cast<size_t>(rng->UniformInt(0, ranges.size() - 1))];
    NodeId u = static_cast<NodeId>(rng->UniformInt(range.first, range.second));
    NodeId v = static_cast<NodeId>(rng->UniformInt(range.first, range.second));
    if (u == v) continue;
    if (track->HasEdge(u, v)) {
      ops.push_back(UpdateOp::RemoveEdge(u, v));
      track->RemoveEdge(u, v);
    } else {
      ops.push_back(UpdateOp::AddEdge(u, v));
      track->AddEdge(u, v);
    }
  }
  return ops;
}

// ---------------------------------------------------------------------------
// ShardRouter units: partition exactness and the manifest.
// ---------------------------------------------------------------------------

TEST(ShardRouterTest, PartitionCoversNodesEdgesAndLabelsExactly) {
  Rng rng(41001);
  std::vector<std::pair<NodeId, NodeId>> ranges;
  DataGraph g = MakeShardableGraph(8, 24, 6, &rng, &ranges);
  for (int n : {1, 2, 4}) {
    ShardRouter router = ShardRouter::Partition(g, n);
    ASSERT_EQ(router.num_shards(), n);
    int64_t nodes = 1;  // the replicated root counts once
    int64_t edges = 0;
    for (int s = 0; s < n; ++s) {
      const DataGraph& sg = router.shard_graph(s);
      nodes += sg.NumNodes() - 1;
      edges += sg.NumEdges();
      // The full base label table is pre-interned in every shard, so label
      // ids agree across shards.
      EXPECT_EQ(sg.labels().size(), g.labels().size()) << "n=" << n;
      // Every shard edge maps back to a real global edge, and the id maps
      // round-trip.
      for (NodeId lu = 0; lu < sg.NumNodes(); ++lu) {
        NodeId gu = router.ToGlobal(s, lu);
        if (lu != 0) {
          EXPECT_EQ(router.ShardOfNode(gu), s);
          EXPECT_EQ(g.label(gu), sg.label(lu));
        }
        for (NodeId lv : sg.children(lu)) {
          EXPECT_TRUE(g.HasEdge(gu, router.ToGlobal(s, lv)))
              << "n=" << n << " shard=" << s;
        }
      }
    }
    EXPECT_EQ(nodes, g.NumNodes()) << "n=" << n;
    EXPECT_EQ(edges, g.NumEdges()) << "n=" << n;
    EXPECT_EQ(router.ShardOfNode(g.root()), ShardRouter::kAllShards);
    EXPECT_EQ(router.next_global(), g.NumNodes());
  }
}

TEST(ShardRouterTest, EdgeRoutingEnforcesOwnershipAndRootRules) {
  Rng rng(41002);
  std::vector<std::pair<NodeId, NodeId>> ranges;
  DataGraph g = MakeShardableGraph(8, 12, 3, &rng, &ranges);
  ShardRouter router = ShardRouter::Partition(g, 4);

  // Intra-subtree edges route to the subtree's shard with local ids that
  // map back to the same endpoints.
  NodeId u = ranges[0].first;
  NodeId v = ranges[0].first + 3;
  auto route = router.RouteEdge(u, v);
  ASSERT_TRUE(route.has_value());
  EXPECT_EQ(route->shard, router.ShardOfNode(u));
  EXPECT_EQ(router.ToGlobal(route->shard, route->u), u);
  EXPECT_EQ(router.ToGlobal(route->shard, route->v), v);

  // Edges FROM the root route to the other endpoint's shard as local 0->v.
  auto from_root = router.RouteEdge(g.root(), v);
  ASSERT_TRUE(from_root.has_value());
  EXPECT_EQ(from_root->shard, router.ShardOfNode(v));
  EXPECT_EQ(from_root->u, 0);

  // Edges INTO the root (self-loops included) are rejected: they would
  // open downward paths through the replicated root across shards.
  EXPECT_FALSE(router.RouteEdge(u, g.root()).has_value());
  EXPECT_FALSE(router.RouteEdge(g.root(), g.root()).has_value());
  // Unknown ids are rejected.
  EXPECT_FALSE(router.RouteEdge(u, g.NumNodes() + 7).has_value());

  // With 8 closed groups on 4 shards some pair of subtrees must live on
  // different shards; their cross edge is rejected.
  bool found_cross = false;
  for (size_t i = 0; i < ranges.size() && !found_cross; ++i) {
    for (size_t j = i + 1; j < ranges.size() && !found_cross; ++j) {
      if (router.ShardOfNode(ranges[i].first) !=
          router.ShardOfNode(ranges[j].first)) {
        EXPECT_FALSE(
            router.RouteEdge(ranges[i].first, ranges[j].first).has_value());
        found_cross = true;
      }
    }
  }
  EXPECT_TRUE(found_cross);
}

TEST(ShardRouterTest, ManifestRoundTripsAndReconcilesLostReservations) {
  Rng rng(41003);
  std::vector<std::pair<NodeId, NodeId>> ranges;
  DataGraph g = MakeShardableGraph(5, 10, 2, &rng, &ranges);
  ShardRouter router = ShardRouter::Partition(g, 3);
  std::vector<int64_t> counts;
  for (int s = 0; s < 3; ++s) {
    counts.push_back(router.shard_graph(s).NumNodes());
  }

  // Reserve ids for a subgraph insert, then save: the manifest must carry
  // the reservation.
  DataGraph h;
  GraphBuilder hb(&h);
  hb.Open("e");
  hb.ValueLeaf("a");
  hb.Close();
  auto reserved = router.RouteSubgraph(h);
  ASSERT_TRUE(reserved.has_value());
  EXPECT_EQ(reserved->first_global, g.NumNodes());
  EXPECT_GT(reserved->new_nodes, 0);

  std::string dir = FreshDir("manifest");
  std::string path = dir + "/router.manifest";
  std::string error;
  ASSERT_TRUE(router.SaveManifest(path, &error)) << error;

  ShardRouter loaded;
  ASSERT_TRUE(ShardRouter::LoadManifest(path, &loaded, &error)) << error;
  EXPECT_EQ(loaded.num_shards(), 3);
  EXPECT_EQ(loaded.next_global(), router.next_global());
  EXPECT_EQ(loaded.base_label_count(), router.base_label_count());
  for (NodeId id = 0; id < g.NumNodes(); ++id) {
    ASSERT_EQ(loaded.ShardOfNode(id), router.ShardOfNode(id)) << id;
  }

  // Reconcile against shard node counts WITHOUT the inserted subgraph (the
  // crash lost that op): the reserved ids become permanent holes and their
  // edge ops are rejected, but every pre-crash id still routes.
  ASSERT_TRUE(loaded.Reconcile(counts, &error)) << error;
  EXPECT_EQ(loaded.ShardOfNode(reserved->first_global), ShardRouter::kHole);
  EXPECT_FALSE(
      loaded.RouteEdge(ranges[0].first, reserved->first_global).has_value());
  auto still = loaded.RouteEdge(ranges[0].first, ranges[0].first + 1);
  EXPECT_TRUE(still.has_value());
  // Holes are never reused: the high-water mark survives reconciliation.
  EXPECT_EQ(loaded.next_global(), router.next_global());
}

// ---------------------------------------------------------------------------
// Differential serving: sharded answers are bit-identical to one server.
// ---------------------------------------------------------------------------

TEST(ShardedServeTest, DifferentialBitIdenticalAcrossShardCounts) {
  Rng rng(42001);
  std::vector<std::pair<NodeId, NodeId>> ranges;
  DataGraph original = MakeShardableGraph(8, 24, 6, &rng, &ranges);
  LabelRequirements reqs;
  reqs[original.labels().Find("b")] = 2;

  // The unsharded reference pipeline.
  DataGraph ref_graph = original;
  DkIndex ref_dk = DkIndex::Build(&ref_graph, reqs);
  QueryServer reference(ref_dk);

  std::vector<std::unique_ptr<ShardedQueryServer>> sharded;
  for (int n : {1, 2, 4}) {
    ShardedQueryServer::Options opts;
    opts.num_shards = n;
    sharded.push_back(
        std::make_unique<ShardedQueryServer>(original, reqs, opts));
  }

  // The identical accepted stream goes everywhere.
  DataGraph track = original;
  std::vector<UpdateOp> ops = MakeIntraSubtreeOps(ranges, 60, &track, &rng);
  for (const UpdateOp& op : ops) {
    const bool add = op.kind == UpdateOp::Kind::kAddEdge;
    ASSERT_TRUE(add ? reference.SubmitAddEdge(op.u, op.v)
                    : reference.SubmitRemoveEdge(op.u, op.v));
    for (auto& server : sharded) {
      ASSERT_TRUE(add ? server->SubmitAddEdge(op.u, op.v)
                      : server->SubmitRemoveEdge(op.u, op.v));
    }
  }
  reference.Flush();
  for (auto& server : sharded) server->Flush();

  std::vector<std::string> probes = {"a//c", "b//d", "e//a", "a.b", "d.e.a"};
  for (int i = 0; i < 8; ++i) {
    probes.push_back(testing_util::RandomChainQuery(track, 3, &rng));
  }
  for (const std::string& probe : probes) {
    std::vector<NodeId> truth = EvaluateOnDataGraph(
        track, testing_util::MustParse(probe, track.labels()));
    auto ref_result = reference.Evaluate(probe);
    ASSERT_TRUE(ref_result.has_value()) << probe;
    EXPECT_EQ(*ref_result, truth) << probe;
    for (auto& server : sharded) {
      EvalStats stats;
      auto result = server->Evaluate(probe, &stats);
      ASSERT_TRUE(result.has_value())
          << probe << " n=" << server->num_shards();
      EXPECT_EQ(*result, truth) << probe << " n=" << server->num_shards();
      EXPECT_TRUE(std::is_sorted(result->begin(), result->end())) << probe;
      EXPECT_EQ(stats.result_size, static_cast<int64_t>(truth.size()));
    }
  }

  // Batch form: same answers, parse failures stay per-query.
  std::vector<std::string> batch = probes;
  batch.push_back("broken..query");
  auto ref_batch = reference.EvaluateBatch(batch);
  for (auto& server : sharded) {
    auto got = server->EvaluateBatch(batch);
    ASSERT_EQ(got.size(), ref_batch.size());
    for (size_t i = 0; i < got.size(); ++i) {
      ASSERT_EQ(got[i].has_value(), ref_batch[i].has_value())
          << batch[i] << " n=" << server->num_shards();
      if (got[i].has_value()) {
        EXPECT_EQ(*got[i], *ref_batch[i])
            << batch[i] << " n=" << server->num_shards();
      }
    }
  }
  EXPECT_FALSE(ref_batch.back().has_value());

  // No op was cross-shard, so nothing was rejected anywhere.
  for (auto& server : sharded) {
    EXPECT_EQ(server->stats().cross_shard_rejects, 0);
    EXPECT_EQ(server->stats().aggregate.ops_applied,
              static_cast<int64_t>(ops.size()));
  }

  // Cross-shard edges are rejected at the front door — never enqueued, and
  // answers are untouched.
  ShardedQueryServer& s4 = *sharded[2];
  bool tried_cross = false;
  for (size_t i = 0; i < ranges.size() && !tried_cross; ++i) {
    for (size_t j = i + 1; j < ranges.size() && !tried_cross; ++j) {
      if (s4.router().ShardOfNode(ranges[i].first) !=
          s4.router().ShardOfNode(ranges[j].first)) {
        EXPECT_FALSE(s4.SubmitAddEdge(ranges[i].first, ranges[j].first));
        tried_cross = true;
      }
    }
  }
  ASSERT_TRUE(tried_cross);
  EXPECT_FALSE(s4.SubmitAddEdge(ranges[0].first, original.root()));
  EXPECT_EQ(s4.stats().cross_shard_rejects, 2);
  s4.Flush();
  auto after = s4.Evaluate(probes[0]);
  ASSERT_TRUE(after.has_value());
  EXPECT_EQ(*after, EvaluateOnDataGraph(track, testing_util::MustParse(
                                                   probes[0], track.labels())));
}

TEST(ShardedServeTest, SubgraphInsertsMatchSingleServerIdsAndAnswers) {
  Rng rng(42002);
  std::vector<std::pair<NodeId, NodeId>> ranges;
  DataGraph original = MakeShardableGraph(4, 12, 3, &rng, &ranges);
  LabelRequirements reqs;
  reqs[original.labels().Find("c")] = 2;

  DataGraph ref_graph = original;
  DkIndex ref_dk = DkIndex::Build(&ref_graph, reqs);
  QueryServer reference(ref_dk);

  ShardedQueryServer::Options opts;
  opts.num_shards = 2;
  ShardedQueryServer server(original, reqs, opts);

  // Insert 1: base labels only — pruning stays on afterwards.
  DataGraph h1;
  {
    GraphBuilder b(&h1);
    b.Open("e");
    b.Open("a");
    b.ValueLeaf("c");
    b.Close();
    b.Close();
  }
  ASSERT_TRUE(reference.SubmitAddSubgraph(h1));
  ASSERT_TRUE(server.SubmitAddSubgraph(std::move(h1)));
  EXPECT_FALSE(server.router().labels_diverged());

  // Insert 2: a NEW label — the shared label universe diverges and every
  // query fans out, still bit-identically.
  DataGraph h2;
  {
    GraphBuilder b(&h2);
    b.Open("zznew");
    b.ValueLeaf("a");
    b.Close();
  }
  ASSERT_TRUE(reference.SubmitAddSubgraph(h2));
  ASSERT_TRUE(server.SubmitAddSubgraph(std::move(h2)));
  reference.Flush();
  server.Flush();
  EXPECT_TRUE(server.router().labels_diverged());

  // Both deployments assigned the same global ids (the router reserves the
  // single server's sequential assignment).
  EXPECT_EQ(server.router().next_global(),
            reference.snapshot()->graph().NumNodes());

  for (const char* probe : {"e.a.c", "zznew", "zznew.a", "a//c", "b//e"}) {
    auto ref_result = reference.Evaluate(probe);
    ASSERT_TRUE(ref_result.has_value()) << probe;
    auto result = server.Evaluate(probe);
    ASSERT_TRUE(result.has_value()) << probe;
    EXPECT_EQ(*result, *ref_result) << probe;
  }

  // A subgraph with an edge back into its own root is rejected before any
  // reservation: ids are untouched.
  DataGraph h3;
  NodeId x = h3.AddNode("e");
  h3.AddEdge(h3.root(), x);
  h3.AddEdge(x, h3.root());
  NodeId before = server.router().next_global();
  EXPECT_FALSE(server.SubmitAddSubgraph(std::move(h3)));
  EXPECT_EQ(server.router().next_global(), before);
  EXPECT_GT(server.stats().cross_shard_rejects, 0);
}

TEST(ShardedServeTest, RetuneFansOutAndFiltersUnknownLabels) {
  Rng rng(42003);
  std::vector<std::pair<NodeId, NodeId>> ranges;
  DataGraph original = MakeShardableGraph(4, 10, 2, &rng, &ranges);
  LabelRequirements reqs;
  reqs[original.labels().Find("a")] = 1;

  ShardedQueryServer::Options opts;
  opts.num_shards = 2;
  ShardedQueryServer server(original, reqs, opts);

  LabelRequirements targets;
  targets[original.labels().Find("c")] = 3;
  EXPECT_TRUE(server.SubmitRetune(targets));
  server.Flush();
  EXPECT_EQ(server.stats().aggregate.ops_applied, 2);  // one per shard

  // Targets entirely outside the base universe are refused, not applied as
  // an empty (demote-everything) retune.
  LabelRequirements bogus;
  bogus[static_cast<LabelId>(original.labels().size() + 50)] = 2;
  EXPECT_FALSE(server.SubmitRetune(bogus));
  server.Flush();
  EXPECT_EQ(server.stats().aggregate.ops_applied, 2);
}

// ---------------------------------------------------------------------------
// Label-based shard pruning.
// ---------------------------------------------------------------------------

TEST(ShardedServeTest, LabelPruningSkipsShardsThatCannotSeed) {
  // Two subtrees with disjoint label alphabets (plus one shared label), so
  // partitioning at N=2 puts each alphabet on its own shard.
  DataGraph g;
  NodeId a0 = g.AddNode("alpha");
  g.AddEdge(g.root(), a0);
  NodeId a1 = g.AddNode("amid");
  g.AddEdge(a0, a1);
  NodeId a2 = g.AddNode("aleaf");
  g.AddEdge(a1, a2);
  NodeId ac = g.AddNode("common");
  g.AddEdge(a0, ac);
  NodeId b0 = g.AddNode("beta");
  g.AddEdge(g.root(), b0);
  NodeId b1 = g.AddNode("bmid");
  g.AddEdge(b0, b1);
  NodeId b2 = g.AddNode("bleaf");
  g.AddEdge(b1, b2);
  NodeId bc = g.AddNode("common");
  g.AddEdge(b0, bc);

  LabelRequirements reqs;
  reqs[g.labels().Find("amid")] = 2;
  ShardedQueryServer::Options opts;
  opts.num_shards = 2;
  ShardedQueryServer server(g, reqs, opts);
  const int a_shard = server.router().ShardOfNode(a0);
  const int b_shard = server.router().ShardOfNode(b0);
  ASSERT_NE(a_shard, b_shard);

  // A query only subtree A's labels can seed: shard B is pruned — zero
  // visits, zero results — and the answer is exact.
  EvalStats stats;
  std::vector<EvalStats> per_shard;
  auto result = server.Evaluate("alpha.amid", &stats, nullptr, &per_shard);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(*result, std::vector<NodeId>{a1});
  ASSERT_EQ(per_shard.size(), 2u);
  EXPECT_EQ(per_shard[static_cast<size_t>(b_shard)].cost(), 0);
  EXPECT_EQ(per_shard[static_cast<size_t>(b_shard)].result_size, 0);
  EXPECT_GT(per_shard[static_cast<size_t>(a_shard)].cost(), 0);
  ShardedQueryServer::Stats st = server.stats();
  EXPECT_EQ(st.queries, 1);
  EXPECT_EQ(st.shard_evals, 1);
  EXPECT_EQ(st.shards_pruned, 1);

  // The mirror query prunes shard A.
  result = server.Evaluate("beta//bleaf", nullptr, nullptr, &per_shard);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(*result, std::vector<NodeId>{b2});
  EXPECT_EQ(per_shard[static_cast<size_t>(a_shard)].cost(), 0);
  EXPECT_EQ(server.stats().shards_pruned, 2);

  // A label present on both shards prunes nothing.
  result = server.Evaluate("common", nullptr, nullptr, &per_shard);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(*result, (std::vector<NodeId>{ac, bc}));
  st = server.stats();
  EXPECT_EQ(st.shards_pruned, 2);
  EXPECT_EQ(st.shard_evals, 4);

  // A label nobody has prunes everything and answers empty.
  result = server.Evaluate("zz_nosuch");
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->empty());
  EXPECT_EQ(server.stats().shards_pruned, 4);
}

// ---------------------------------------------------------------------------
// fork+SIGKILL crash recovery of a sharded durability directory.
// ---------------------------------------------------------------------------

struct ShardedCrashFixture {
  DataGraph original;
  std::vector<std::pair<NodeId, NodeId>> ranges;
  LabelRequirements reqs;
  std::vector<UpdateOp> ops;
  std::vector<std::string> probes;

  static ShardedCrashFixture Make(uint64_t seed) {
    ShardedCrashFixture f;
    Rng rng(seed);
    f.original = MakeShardableGraph(6, 20, 4, &rng, &f.ranges);
    f.reqs[f.original.labels().Find("b")] = 2;
    DataGraph track = f.original;
    f.ops = MakeIntraSubtreeOps(f.ranges, 120, &track, &rng);
    for (int i = 0; i < 3; ++i) {
      f.probes.push_back(testing_util::RandomChainQuery(track, 3, &rng));
    }
    f.probes.push_back("a//e");
    return f;
  }
};

// One trial: the child serves the stream through a sharded durable
// deployment and is SIGKILLed mid-flight; the parent recovers, rebuilds a
// ShardedQueryServer from the recovery, and asserts its answers are
// bit-identical to ground truth on the graph holding exactly each shard's
// durable op prefix.
void RunShardedKillTrial(const ShardedCrashFixture& f, int num_shards,
                         const std::string& dir, int64_t kill_after_us) {
  ShardedQueryServer::Options opts;
  opts.num_shards = num_shards;
  opts.server.durability.dir = dir;
  opts.server.durability.sync_every_n = 8;
  opts.server.durability.checkpoint_interval_ms = 5;
  opts.server.max_batch = 4;

  ::pid_t pid = ::fork();
  ASSERT_GE(pid, 0) << "fork failed";
  if (pid == 0) {
    // Child: serve the whole stream, then park until SIGKILLed — it must
    // never run gtest teardown.
    {
      ShardedQueryServer server(f.original, f.reqs, opts);
      for (const UpdateOp& op : f.ops) {
        bool ok = op.kind == UpdateOp::Kind::kAddEdge
                      ? server.SubmitAddEdge(op.u, op.v)
                      : server.SubmitRemoveEdge(op.u, op.v);
        if (!ok) ::_exit(2);
        std::this_thread::sleep_for(std::chrono::microseconds(150));
      }
      server.Flush();
      for (;;) std::this_thread::sleep_for(std::chrono::seconds(1));
    }
  }
  std::this_thread::sleep_for(std::chrono::microseconds(kill_after_us));
  ASSERT_EQ(::kill(pid, SIGKILL), 0);
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL)
      << "child exited on its own (status " << status << ")";

  if (!PathExists(dir + "/router.manifest")) {
    // Killed before the deployment finished starting: nothing was durable
    // yet, so there is nothing to recover or compare.
    return;
  }
  ShardedRecovery rec;
  std::string error;
  ASSERT_TRUE(RecoverShardedDkIndex(dir, &rec, &error)) << error;
  ASSERT_EQ(rec.router.num_shards(), num_shards);

  // Ground truth: the original graph plus, per shard, exactly the durable
  // prefix of that shard's op stream. Ops on different shards touch
  // disjoint edges, so global submission order is a valid interleaving.
  ShardRouter route_check = ShardRouter::Partition(f.original, num_shards);
  DataGraph truth = f.original;
  std::vector<int64_t> pos(static_cast<size_t>(num_shards), 0);
  for (const UpdateOp& op : f.ops) {
    auto route = route_check.RouteEdge(op.u, op.v);
    ASSERT_TRUE(route.has_value());
    const size_t s = static_cast<size_t>(route->shard);
    if (static_cast<uint64_t>(++pos[s]) > rec.shard_stats[s].last_seq) {
      continue;  // past this shard's durable prefix
    }
    if (op.kind == UpdateOp::Kind::kAddEdge) {
      truth.AddEdge(op.u, op.v);
    } else {
      ASSERT_TRUE(truth.RemoveEdge(op.u, op.v));
    }
  }

  for (int s = 0; s < num_shards; ++s) {
    std::string invariant_error;
    EXPECT_TRUE(rec.indexes[static_cast<size_t>(s)].index().ValidatePartition(
        &invariant_error))
        << "shard " << s << ": " << invariant_error;
  }

  ShardedQueryServer server(std::move(rec), opts);
  for (const std::string& probe : f.probes) {
    auto result = server.Evaluate(probe);
    ASSERT_TRUE(result.has_value()) << probe;
    EXPECT_EQ(*result, EvaluateOnDataGraph(truth, testing_util::MustParse(
                                                      probe, truth.labels())))
        << "n=" << num_shards << " probe '" << probe << "'";
  }
  server.Stop();
}

class ShardedFaultInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
#ifdef DKI_UNDER_TSAN
    GTEST_SKIP() << "fork-based fault injection is not TSan-compatible";
#endif
  }
};

TEST_F(ShardedFaultInjectionTest, KillsRecoverDurablePrefixAcrossShardCounts) {
  ShardedCrashFixture f = ShardedCrashFixture::Make(43001);
  Rng rng(43002);
  int trial = 0;
  for (int num_shards : {1, 2, 2, 4}) {
    std::string dir = FreshDir("kill_n" + std::to_string(num_shards) + "_" +
                               std::to_string(trial++));
    RunShardedKillTrial(f, num_shards, dir, rng.UniformInt(2000, 25000));
    if (HasFatalFailure()) return;
  }
}

// A clean stop must recover to the full stream on every shard.
TEST(ShardedServeTest, CleanShutdownRecoversEveryShardCompletely) {
  ShardedCrashFixture f = ShardedCrashFixture::Make(43003);
  std::string dir = FreshDir("clean_shutdown");
  ShardedQueryServer::Options opts;
  opts.num_shards = 2;
  opts.server.durability.dir = dir;
  opts.server.durability.sync_every_n = 1;

  DataGraph truth = f.original;
  std::vector<std::vector<NodeId>> served;
  {
    ShardedQueryServer server(f.original, f.reqs, opts);
    for (const UpdateOp& op : f.ops) {
      if (op.kind == UpdateOp::Kind::kAddEdge) {
        ASSERT_TRUE(server.SubmitAddEdge(op.u, op.v));
        truth.AddEdge(op.u, op.v);
      } else {
        ASSERT_TRUE(server.SubmitRemoveEdge(op.u, op.v));
        ASSERT_TRUE(truth.RemoveEdge(op.u, op.v));
      }
    }
    server.Flush();
    for (const std::string& probe : f.probes) {
      auto result = server.Evaluate(probe);
      ASSERT_TRUE(result.has_value());
      served.push_back(*result);
    }
    server.Stop();
  }

  ShardedRecovery rec;
  std::string error;
  ASSERT_TRUE(RecoverShardedDkIndex(dir, &rec, &error)) << error;
  uint64_t durable_ops = 0;
  for (const RecoveryStats& st : rec.shard_stats) durable_ops += st.last_seq;
  EXPECT_EQ(durable_ops, f.ops.size());

  ShardedQueryServer server(std::move(rec), opts);
  for (size_t i = 0; i < f.probes.size(); ++i) {
    auto result = server.Evaluate(f.probes[i]);
    ASSERT_TRUE(result.has_value());
    EXPECT_EQ(*result, served[i]) << f.probes[i];
    EXPECT_EQ(*result,
              EvaluateOnDataGraph(truth, testing_util::MustParse(
                                             f.probes[i], truth.labels())));
  }
  server.Stop();
}

}  // namespace
}  // namespace dki
