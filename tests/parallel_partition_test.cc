// Sequential-vs-parallel engine equivalence. The parallel engine promises
// more than equality up to renumbering: its chunk-ordered reduction
// reproduces the sequential first-appearance numbering exactly, so these
// tests assert bitwise-identical partitions across thread and chunk counts.

#include "index/parallel_refine.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/thread_pool.h"
#include "datagen/nasa_generator.h"
#include "datagen/xmark_generator.h"
#include "index/ak_index.h"
#include "index/dk_index.h"
#include "index/one_index.h"
#include "index/paige_tarjan.h"
#include "index/partition.h"
#include "tests/test_util.h"

namespace dki {
namespace {

void ExpectIdenticalPartition(const Partition& a, const Partition& b) {
  EXPECT_EQ(a.num_blocks, b.num_blocks);
  EXPECT_EQ(a.block_of, b.block_of);
  EXPECT_EQ(a.block_label, b.block_label);
  EXPECT_TRUE(SamePartition(a, b));
}

// Thread counts to sweep; deliberately includes more lanes than this
// container has cores and a 1-lane pool (the inline path).
const int kThreadCounts[] = {1, 2, 3, 4, 8};

TEST(ParallelPartitionTest, RefineOnceMatchesSequentialOnRandomGraphs) {
  Rng rng(20030609);
  for (int trial = 0; trial < 10; ++trial) {
    DataGraph g = testing_util::RandomGraph(300 + trial * 50, 6, 80, &rng);
    Partition p = LabelSplit(g);
    std::vector<bool> all(static_cast<size_t>(p.num_blocks), true);
    Partition seq = RefineOnce(g, p, all);
    for (int threads : kThreadCounts) {
      ThreadPool pool(threads);
      ExpectIdenticalPartition(seq, ParallelRefineOnce(g, p, all, pool));
    }
  }
}

TEST(ParallelPartitionTest, RefineOnceRespectsRefineMask) {
  Rng rng(7);
  DataGraph g = testing_util::RandomGraph(500, 5, 120, &rng);
  Partition p = ComputeKBisimulation(g, 1);
  // Refine only every other block; untouched blocks must survive verbatim.
  std::vector<bool> mask(static_cast<size_t>(p.num_blocks), false);
  for (size_t b = 0; b < mask.size(); b += 2) mask[b] = true;
  Partition seq = RefineOnce(g, p, mask);
  ThreadPool pool(4);
  ExpectIdenticalPartition(seq, ParallelRefineOnce(g, p, mask, pool));
}

TEST(ParallelPartitionTest, KBisimulationMatchesAcrossThreadCounts) {
  Rng rng(99);
  DataGraph g = testing_util::RandomGraph(400, 8, 100, &rng);
  for (int k : {0, 1, 2, 3, 5}) {
    Partition seq = ComputeKBisimulation(g, k);
    for (int threads : kThreadCounts) {
      ThreadPool pool(threads);
      ExpectIdenticalPartition(seq,
                               ParallelComputeKBisimulation(g, k, pool));
    }
  }
}

TEST(ParallelPartitionTest, FullBisimulationMatchesSequentialAndSplitter) {
  Rng rng(1234);
  DataGraph g = testing_util::RandomGraph(600, 6, 150, &rng);
  int seq_rounds = 0;
  Partition seq = ComputeFullBisimulation(g, &seq_rounds);
  ThreadPool pool(4);
  int par_rounds = 0;
  Partition par = ParallelComputeFullBisimulation(g, pool, &par_rounds);
  ExpectIdenticalPartition(seq, par);
  EXPECT_EQ(seq_rounds, par_rounds);
  // The splitter-queue engine numbers blocks differently but must agree as
  // a partition.
  EXPECT_TRUE(SamePartition(seq, CoarsestStablePartition(g)));
}

TEST(ParallelPartitionTest, DkPartitionMatchesOnXmarkSeed) {
  XmarkOptions options;
  options.scale = 0.3;
  DataGraph g = GenerateXmarkGraph(options).graph;
  std::vector<int> req(static_cast<size_t>(g.labels().size()), 0);
  // A mixed requirement profile exercising the per-round refine mask.
  for (size_t l = 0; l < req.size(); ++l) req[l] = static_cast<int>(l % 4);
  req = BroadcastLabelRequirements(
      ComputeLabelParents(g, g.labels().size()), std::move(req));

  std::vector<int> seq_k;
  Partition seq = BuildDkPartition(g, req, &seq_k);
  for (int threads : {2, 4}) {
    ThreadPool pool(threads);
    std::vector<int> par_k;
    Partition par = ParallelBuildDkPartition(g, req, &par_k, pool);
    ExpectIdenticalPartition(seq, par);
    EXPECT_EQ(seq_k, par_k);
  }
}

TEST(ParallelPartitionTest, DkPartitionMatchesOnNasaSeed) {
  NasaOptions options;
  options.scale = 0.3;
  DataGraph g = GenerateNasaGraph(options).graph;
  std::vector<int> req(static_cast<size_t>(g.labels().size()), 0);
  for (size_t l = 0; l < req.size(); ++l) req[l] = static_cast<int>(l % 5);
  req = BroadcastLabelRequirements(
      ComputeLabelParents(g, g.labels().size()), std::move(req));

  std::vector<int> seq_k;
  Partition seq = BuildDkPartition(g, req, &seq_k);
  ThreadPool pool(4);
  std::vector<int> par_k;
  ExpectIdenticalPartition(seq,
                           ParallelBuildDkPartition(g, req, &par_k, pool));
  EXPECT_EQ(seq_k, par_k);
}

// End-to-end: the BuildOptions knob produces identical indexes through the
// public constructors.

TEST(ParallelPartitionTest, DkIndexBuildIdenticalWithThreads) {
  XmarkOptions options;
  options.scale = 0.2;
  DataGraph g1 = GenerateXmarkGraph(options).graph;
  DataGraph g2 = g1;
  LabelRequirements reqs;
  for (LabelId l = 0; l < g1.labels().size(); l += 3) reqs[l] = 3;

  DkIndex seq = DkIndex::Build(&g1, reqs, BuildOptions{.num_threads = 1});
  DkIndex par = DkIndex::Build(&g2, reqs, BuildOptions{.num_threads = 4});
  ASSERT_EQ(seq.index().NumIndexNodes(), par.index().NumIndexNodes());
  EXPECT_EQ(seq.index().NumIndexEdges(), par.index().NumIndexEdges());
  for (NodeId n = 0; n < g1.NumNodes(); ++n) {
    ASSERT_EQ(seq.index().index_of(n), par.index().index_of(n)) << n;
  }
  for (IndexNodeId i = 0; i < seq.index().NumIndexNodes(); ++i) {
    EXPECT_EQ(seq.index().k(i), par.index().k(i));
  }
}

TEST(ParallelPartitionTest, AkIndexBuildIdenticalWithThreads) {
  Rng rng(555);
  DataGraph g1 = testing_util::RandomGraph(800, 7, 200, &rng);
  DataGraph g2 = g1;
  AkIndex seq = AkIndex::Build(&g1, 3, BuildOptions{.num_threads = 1});
  AkIndex par = AkIndex::Build(&g2, 3, BuildOptions{.num_threads = 8});
  ASSERT_EQ(seq.index().NumIndexNodes(), par.index().NumIndexNodes());
  for (NodeId n = 0; n < g1.NumNodes(); ++n) {
    ASSERT_EQ(seq.index().index_of(n), par.index().index_of(n)) << n;
  }
}

TEST(ParallelPartitionTest, OneIndexBuildIdenticalWithThreads) {
  Rng rng(777);
  DataGraph g = testing_util::RandomGraph(700, 5, 180, &rng);
  IndexGraph seq =
      OneIndex::Build(&g, OneIndex::Algorithm::kIteratedRefinement,
                      BuildOptions{.num_threads = 1});
  IndexGraph par =
      OneIndex::Build(&g, OneIndex::Algorithm::kIteratedRefinement,
                      BuildOptions{.num_threads = 4});
  ASSERT_EQ(seq.NumIndexNodes(), par.NumIndexNodes());
  for (NodeId n = 0; n < g.NumNodes(); ++n) {
    ASSERT_EQ(seq.index_of(n), par.index_of(n)) << n;
  }
}

TEST(ParallelPartitionTest, BuildOptionsZeroResolvesFromEnvironment) {
  // num_threads = 0 (the default) defers to DKI_NUM_THREADS (the CI forcing
  // knob), else hardware concurrency.
  const char* saved = std::getenv("DKI_NUM_THREADS");
  std::string saved_value = saved != nullptr ? saved : "";

  BuildOptions options;
  options.num_threads = 5;  // explicit count wins over the environment
  ::setenv("DKI_NUM_THREADS", "3", 1);
  EXPECT_EQ(options.ResolvedNumThreads(), 5);

  options.num_threads = 0;
  EXPECT_EQ(options.ResolvedNumThreads(), 3);
  ::setenv("DKI_NUM_THREADS", "not-a-number", 1);
  EXPECT_EQ(options.ResolvedNumThreads(), ThreadPool::HardwareConcurrency());
  ::unsetenv("DKI_NUM_THREADS");
  EXPECT_EQ(options.ResolvedNumThreads(), ThreadPool::HardwareConcurrency());

  if (saved != nullptr) {
    ::setenv("DKI_NUM_THREADS", saved_value.c_str(), 1);
  }
}

}  // namespace
}  // namespace dki
