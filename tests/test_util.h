#ifndef DKINDEX_TESTS_TEST_UTIL_H_
#define DKINDEX_TESTS_TEST_UTIL_H_

#include <string>
#include <vector>

#include "common/random.h"
#include "graph/data_graph.h"
#include "graph/graph_builder.h"
#include "pathexpr/path_expression.h"

namespace dki {
namespace testing_util {

// Builds a small movie database in the spirit of the paper's Figure 1:
// movieDB contains directors and actors; both contain movies (directors'
// movies carry titles), and reference edges make some movies shared between
// a director and an actor, so some `movie` nodes have an `actor` parent and
// others do not (the paper's running bisimilarity example).
inline DataGraph BuildMovieGraph() {
  DataGraph g;
  GraphBuilder b(&g);

  b.Open("movieDB");

  b.Open("director");  // director #1
  b.ValueLeaf("name");
  NodeId m1 = b.Open("movie");  // movie with actor link
  b.ValueLeaf("title");
  b.Close();
  b.Open("movie");  // movie only directed
  b.ValueLeaf("title");
  b.Close();
  b.Close();  // director #1

  b.Open("director");  // director #2
  b.ValueLeaf("name");
  b.Open("movie");
  b.ValueLeaf("title");
  b.Close();
  b.Close();  // director #2

  b.Open("actor");  // actor #1 references director #1's movie
  b.ValueLeaf("name");
  NodeId a1 = b.cursor();
  b.Close();

  b.Open("actor");  // actor #2 with an own movie subtree
  b.ValueLeaf("name");
  NodeId m4 = b.Open("movie");
  b.ValueLeaf("title");
  b.Open("actor");
  b.ValueLeaf("name");
  b.Close();
  b.Close();
  b.Close();

  b.Close();  // movieDB

  g.AddEdge(a1, m1);  // reference edge: actor #1 -> shared movie
  (void)m4;
  return g;
}

// Random document-shaped graph: `n` non-root nodes with labels drawn from an
// alphabet of `num_labels`, tree edges to random earlier nodes, plus
// `extra_edges` random cross edges. Always fully reachable from the root.
inline DataGraph RandomGraph(int n, int num_labels, int extra_edges,
                             Rng* rng) {
  DataGraph g;
  std::vector<std::string> labels;
  for (int i = 0; i < num_labels; ++i) {
    labels.push_back(std::string(1, static_cast<char>('a' + i % 26)) +
                     (i >= 26 ? std::to_string(i / 26) : ""));
  }
  for (int i = 0; i < n; ++i) {
    NodeId node = g.AddNode(labels[static_cast<size_t>(
        rng->UniformInt(0, num_labels - 1))]);
    NodeId parent = static_cast<NodeId>(rng->UniformInt(0, node - 1));
    g.AddEdge(parent, node);
  }
  for (int i = 0; i < extra_edges && g.NumNodes() > 2; ++i) {
    NodeId u = static_cast<NodeId>(rng->UniformInt(1, g.NumNodes() - 1));
    NodeId v = static_cast<NodeId>(rng->UniformInt(1, g.NumNodes() - 1));
    g.AddEdge(u, v);
  }
  return g;
}

// Random chain query over labels that actually occur in `g`, generated as an
// upward walk so it has a non-empty result.
inline std::string RandomChainQuery(const DataGraph& g, int len, Rng* rng) {
  NodeId target = static_cast<NodeId>(rng->UniformInt(1, g.NumNodes() - 1));
  std::vector<std::string> names = {g.label_name(target)};
  NodeId cur = target;
  for (int i = 1; i < len; ++i) {
    const auto& parents = g.parents(cur);
    if (parents.empty()) break;
    cur = parents[static_cast<size_t>(
        rng->UniformInt(0, static_cast<int64_t>(parents.size()) - 1))];
    if (g.label(cur) == LabelTable::kRootLabel) break;
    names.push_back(g.label_name(cur));
  }
  std::string out;
  for (auto it = names.rbegin(); it != names.rend(); ++it) {
    if (!out.empty()) out.push_back('.');
    out.append(*it);
  }
  return out;
}

inline PathExpression MustParse(const std::string& text,
                                const LabelTable& labels) {
  std::string error;
  auto expr = PathExpression::Parse(text, labels, &error);
  DKI_CHECK(expr.has_value());
  return std::move(*expr);
}

}  // namespace testing_util
}  // namespace dki

#endif  // DKINDEX_TESTS_TEST_UTIL_H_
