#include "graph/data_graph.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/random.h"
#include "graph/graph_algos.h"
#include "graph/graph_builder.h"
#include "tests/test_util.h"

namespace dki {
namespace {

TEST(DataGraphTest, FreshGraphHasOnlyRoot) {
  DataGraph g;
  EXPECT_EQ(g.NumNodes(), 1);
  EXPECT_EQ(g.NumEdges(), 0);
  EXPECT_EQ(g.label(g.root()), LabelTable::kRootLabel);
}

TEST(DataGraphTest, AddNodeAndEdge) {
  DataGraph g;
  NodeId a = g.AddNode("a");
  NodeId b = g.AddNode("b");
  g.AddEdge(g.root(), a);
  g.AddEdge(a, b);
  EXPECT_EQ(g.NumNodes(), 3);
  EXPECT_EQ(g.NumEdges(), 2);
  EXPECT_TRUE(g.HasEdge(a, b));
  EXPECT_FALSE(g.HasEdge(b, a));
  ASSERT_EQ(g.children(a).size(), 1u);
  EXPECT_EQ(g.children(a)[0], b);
  ASSERT_EQ(g.parents(b).size(), 1u);
  EXPECT_EQ(g.parents(b)[0], a);
}

TEST(DataGraphTest, AddEdgeDeduplicates) {
  DataGraph g;
  NodeId a = g.AddNode("a");
  g.AddEdge(g.root(), a);
  g.AddEdge(g.root(), a);
  EXPECT_EQ(g.NumEdges(), 1);
}

TEST(DataGraphTest, SelfLoopAllowed) {
  DataGraph g;
  NodeId a = g.AddNode("a");
  g.AddEdge(g.root(), a);
  g.AddEdge(a, a);
  EXPECT_TRUE(g.HasEdge(a, a));
  EXPECT_EQ(g.parents(a).size(), 2u);
}

TEST(DataGraphTest, NodesWithLabel) {
  DataGraph g;
  NodeId a1 = g.AddNode("a");
  g.AddNode("b");
  NodeId a2 = g.AddNode("a");
  std::vector<NodeId> as = g.NodesWithLabel(g.labels().Find("a"));
  EXPECT_EQ(as, (std::vector<NodeId>{a1, a2}));
}

TEST(GraphBuilderTest, OpenCloseNesting) {
  DataGraph g;
  GraphBuilder b(&g);
  NodeId site = b.Open("site");
  NodeId people = b.Open("people");
  b.ValueLeaf("name");
  b.Close();
  b.Close();
  EXPECT_EQ(g.parents(people)[0], site);
  EXPECT_EQ(g.parents(site)[0], g.root());
  // site -> people -> name -> VALUE
  EXPECT_EQ(g.NumNodes(), 5);
  EXPECT_EQ(g.NumEdges(), 4);
}

TEST(GraphBuilderTest, ReferencesResolveAfterDefinition) {
  DataGraph g;
  GraphBuilder b(&g);
  b.Open("db");
  NodeId ref_holder = b.Leaf("itemref");
  b.Ref(ref_holder, "item1");  // forward reference
  NodeId item = b.Open("item");
  b.DefineId("item1");
  b.Close();
  b.Close();
  EXPECT_EQ(b.Finish(), 0);
  EXPECT_TRUE(g.HasEdge(ref_holder, item));
}

TEST(GraphBuilderTest, DanglingReferencesAreDroppedAndCounted) {
  DataGraph g;
  GraphBuilder b(&g);
  b.Open("db");
  NodeId r = b.Leaf("ref");
  b.Ref(r, "missing");
  b.Close();
  EXPECT_EQ(b.Finish(), 1);
  EXPECT_TRUE(g.children(r).empty());
}

TEST(GraphAlgosTest, StatsOnMovieGraph) {
  DataGraph g = testing_util::BuildMovieGraph();
  GraphStats s = ComputeStats(g);
  EXPECT_EQ(s.num_nodes, g.NumNodes());
  EXPECT_EQ(s.num_edges, g.NumEdges());
  EXPECT_EQ(s.num_tree_edges + s.num_non_tree_edges, s.num_edges);
  EXPECT_GT(s.num_non_tree_edges, 0);  // the actor -> movie reference
  EXPECT_GE(s.max_depth, 4);
  EXPECT_TRUE(AllReachableFromRoot(g));
}

TEST(GraphAlgosTest, ReachableFromSubtree) {
  DataGraph g;
  NodeId a = g.AddNode("a");
  NodeId b = g.AddNode("b");
  NodeId c = g.AddNode("c");
  g.AddEdge(g.root(), a);
  g.AddEdge(a, b);
  g.AddEdge(g.root(), c);
  std::vector<NodeId> r = ReachableFrom(g, a);
  EXPECT_EQ(r, (std::vector<NodeId>{a, b}));
  EXPECT_TRUE(AllReachableFromRoot(g));
}

TEST(GraphAlgosTest, LabelPathMatchesNode) {
  DataGraph g = testing_util::BuildMovieGraph();
  const LabelTable& t = g.labels();
  LabelId movie = t.Find("movie");
  LabelId title = t.Find("title");
  LabelId director = t.Find("director");
  LabelId actor = t.Find("actor");
  ASSERT_NE(movie, kInvalidLabel);

  int via_movie = 0, via_director = 0, via_actor = 0;
  for (NodeId n : g.NodesWithLabel(title)) {
    via_movie += LabelPathMatchesNode(g, {movie, title}, n);
    via_director += LabelPathMatchesNode(g, {director, movie, title}, n);
    via_actor += LabelPathMatchesNode(g, {actor, movie, title}, n);
  }
  EXPECT_EQ(via_movie, 4);     // every title sits under a movie
  EXPECT_EQ(via_director, 3);  // three movies belong to directors
  EXPECT_EQ(via_actor, 2);     // the shared movie + the actor's own movie
}

TEST(GraphAlgosTest, IncomingLabelPaths) {
  DataGraph g = testing_util::BuildMovieGraph();
  LabelId title = g.labels().Find("title");
  NodeId some_title = g.NodesWithLabel(title)[0];
  auto paths1 = IncomingLabelPaths(g, some_title, 1, 100);
  ASSERT_EQ(paths1.size(), 1u);
  EXPECT_EQ(paths1[0], (std::vector<LabelId>{title}));
  auto paths2 = IncomingLabelPaths(g, some_title, 2, 100);
  ASSERT_EQ(paths2.size(), 1u);
  EXPECT_EQ(paths2[0][1], title);
  EXPECT_EQ(g.labels().Name(paths2[0][0]), "movie");
}

TEST(GraphAlgosTest, ToDotContainsNodes) {
  DataGraph g;
  g.AddNode("a");
  std::string dot = ToDot(g);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("ROOT"), std::string::npos);
  EXPECT_NE(dot.find("\"a\\n#1\""), std::string::npos);
}

TEST(RandomGraphTest, IsWellFormed) {
  Rng rng(7);
  DataGraph g = testing_util::RandomGraph(200, 5, 30, &rng);
  EXPECT_EQ(g.NumNodes(), 201);
  EXPECT_TRUE(AllReachableFromRoot(g));
}

}  // namespace
}  // namespace dki
