#include "query/workload.h"

#include <gtest/gtest.h>

#include <set>

#include "common/string_util.h"
#include "datagen/xmark_generator.h"
#include "query/evaluator.h"
#include "query/load_analyzer.h"
#include "tests/test_util.h"

namespace dki {
namespace {

TEST(WorkloadTest, GeneratesRequestedCountAndLengths) {
  XmarkOptions options;
  options.scale = 0.2;
  DataGraph g = GenerateXmarkGraph(options).graph;
  Rng rng(1);
  WorkloadOptions wopts;
  wopts.num_queries = 100;
  Workload w = GenerateWorkload(g, wopts, &rng);
  EXPECT_EQ(w.queries.size(), 100u);
  std::set<std::string> unique(w.queries.begin(), w.queries.end());
  EXPECT_EQ(unique.size(), w.queries.size());
  for (const std::string& q : w.queries) {
    size_t len = StrSplit(q, '.').size();
    EXPECT_GE(len, 2u) << q;
    EXPECT_LE(len, 5u) << q;
  }
}

TEST(WorkloadTest, QueriesParseAndHaveNonEmptyResults) {
  XmarkOptions options;
  options.scale = 0.1;
  DataGraph g = GenerateXmarkGraph(options).graph;
  Rng rng(2);
  WorkloadOptions wopts;
  wopts.num_queries = 50;
  Workload w = GenerateWorkload(g, wopts, &rng);
  for (const std::string& text : w.queries) {
    PathExpression q = testing_util::MustParse(text, g.labels());
    EXPECT_FALSE(EvaluateOnDataGraph(g, q).empty()) << text;
  }
}

TEST(WorkloadTest, DeterministicGivenSeed) {
  Rng rng_g(3);
  DataGraph g = testing_util::RandomGraph(300, 6, 50, &rng_g);
  WorkloadOptions wopts;
  wopts.num_queries = 30;
  Rng r1(77), r2(77), r3(78);
  Workload w1 = GenerateWorkload(g, wopts, &r1);
  Workload w2 = GenerateWorkload(g, wopts, &r2);
  Workload w3 = GenerateWorkload(g, wopts, &r3);
  EXPECT_EQ(w1.queries, w2.queries);
  EXPECT_NE(w1.queries, w3.queries);
}

TEST(WorkloadTest, ExcludesRootAndValueByDefault) {
  Rng rng_g(4);
  DataGraph g = testing_util::RandomGraph(200, 4, 30, &rng_g);
  Rng rng(5);
  Workload w = GenerateWorkload(g, {}, &rng);
  for (const std::string& q : w.queries) {
    EXPECT_EQ(q.find("ROOT"), std::string::npos) << q;
    EXPECT_EQ(q.find("VALUE"), std::string::npos) << q;
  }
}

TEST(LoadAnalyzerTest, ChainRequirementIsLengthMinusOne) {
  LabelTable labels;
  LabelId a = labels.Intern("a");
  LabelId b = labels.Intern("b");
  LabelId c = labels.Intern("c");
  std::vector<PathExpression> queries = {
      testing_util::MustParse("a.b.c", labels),  // req(c) = 2
      testing_util::MustParse("b.c", labels),    // req(c) = 1 (max kept)
      testing_util::MustParse("a.b", labels),    // req(b) = 1
  };
  LabelRequirements reqs = MineRequirements(queries, labels);
  EXPECT_EQ(reqs.at(c), 2);
  EXPECT_EQ(reqs.at(b), 1);
  EXPECT_EQ(reqs.count(a), 0u);  // never a query target
}

TEST(LoadAnalyzerTest, SingleLabelQueryNeedsNoSimilarity) {
  LabelTable labels;
  LabelId a = labels.Intern("a");
  std::vector<PathExpression> queries = {
      testing_util::MustParse("a", labels)};
  LabelRequirements reqs = MineRequirements(queries, labels);
  EXPECT_EQ(reqs.count(a), 0u);  // length 1 => requirement 0 => omitted
}

TEST(LoadAnalyzerTest, UnboundedQueriesClampToMax) {
  LabelTable labels;
  labels.Intern("a");
  LabelId b = labels.Intern("b");
  std::vector<PathExpression> queries = {
      testing_util::MustParse("a//b", labels)};
  LoadAnalyzerOptions options;
  options.max_requirement = 4;
  LabelRequirements reqs = MineRequirements(queries, labels, options);
  EXPECT_EQ(reqs.at(b), 4);
}

TEST(LoadAnalyzerTest, AlternationRaisesAllEndLabels) {
  LabelTable labels;
  labels.Intern("a");
  LabelId b = labels.Intern("b");
  LabelId c = labels.Intern("c");
  std::vector<PathExpression> queries = {
      testing_util::MustParse("a.a.(b|c)", labels)};
  LabelRequirements reqs = MineRequirements(queries, labels);
  EXPECT_EQ(reqs.at(b), 2);
  EXPECT_EQ(reqs.at(c), 2);
}

TEST(LoadAnalyzerTest, FromTextSkipsAndReportsBadQueries) {
  LabelTable labels;
  LabelId b = labels.Intern("b");
  std::vector<std::string> errors;
  LabelRequirements reqs = MineRequirementsFromText(
      {"a.b", "((broken", "x..y"}, labels, &errors);
  EXPECT_EQ(reqs.at(b), 1);
  EXPECT_EQ(errors.size(), 2u);
}

TEST(LoadAnalyzerTest, UnknownLabelsIgnored) {
  LabelTable labels;
  labels.Intern("a");
  LabelRequirements reqs =
      MineRequirementsFromText({"a.zzz"}, labels, nullptr);
  EXPECT_TRUE(reqs.empty());  // zzz not in the data: no requirement
}

}  // namespace
}  // namespace dki
