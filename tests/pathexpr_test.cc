#include <gtest/gtest.h>

#include "pathexpr/ast.h"
#include "pathexpr/parser.h"
#include "pathexpr/tokenizer.h"

namespace dki {
namespace {

std::string ParseToString(const std::string& input) {
  std::string error;
  AstPtr ast = ParsePathExpression(input, &error);
  if (ast == nullptr) return "ERROR: " + error;
  return AstToString(*ast);
}

TEST(TokenizerTest, AllTokenKinds) {
  std::vector<Token> tokens;
  std::string error;
  ASSERT_TRUE(Tokenize("a.b|c*d+e?(_)//f", &tokens, &error)) << error;
  std::vector<TokenKind> kinds;
  for (const Token& t : tokens) kinds.push_back(t.kind);
  EXPECT_EQ(kinds,
            (std::vector<TokenKind>{
                TokenKind::kLabel, TokenKind::kDot, TokenKind::kLabel,
                TokenKind::kPipe, TokenKind::kLabel, TokenKind::kStar,
                TokenKind::kLabel, TokenKind::kPlus, TokenKind::kLabel,
                TokenKind::kQuestion, TokenKind::kLParen,
                TokenKind::kWildcard, TokenKind::kRParen,
                TokenKind::kDoubleSlash, TokenKind::kLabel,
                TokenKind::kEnd}));
}

TEST(TokenizerTest, LabelsWithDigitsAndDashes) {
  std::vector<Token> tokens;
  std::string error;
  ASSERT_TRUE(Tokenize("open_auction.closed-auction2", &tokens, &error));
  EXPECT_EQ(tokens[0].text, "open_auction");
  EXPECT_EQ(tokens[2].text, "closed-auction2");
}

TEST(TokenizerTest, WhitespaceIgnored) {
  std::vector<Token> tokens;
  std::string error;
  ASSERT_TRUE(Tokenize("  a .  b ", &tokens, &error));
  EXPECT_EQ(tokens.size(), 4u);  // a . b END
}

TEST(TokenizerTest, SingleSlashRejected) {
  std::vector<Token> tokens;
  std::string error;
  EXPECT_FALSE(Tokenize("a/b", &tokens, &error));
  EXPECT_NE(error.find("'//'"), std::string::npos);
}

TEST(TokenizerTest, UnexpectedCharacter) {
  std::vector<Token> tokens;
  std::string error;
  EXPECT_FALSE(Tokenize("a.b$", &tokens, &error));
  EXPECT_NE(error.find("'$'"), std::string::npos);
}

TEST(ParserTest, ChainBindsLeft) {
  EXPECT_EQ(ParseToString("a.b.c"), "((a.b).c)");
}

TEST(ParserTest, AlternationBindsLoosest) {
  EXPECT_EQ(ParseToString("a.b|c"), "((a.b)|c)");
  EXPECT_EQ(ParseToString("a.(b|c)"), "(a.(b|c))");
}

TEST(ParserTest, PostfixOperators) {
  EXPECT_EQ(ParseToString("a*"), "a*");
  EXPECT_EQ(ParseToString("a+?"), "a+?");
  EXPECT_EQ(ParseToString("(a.b)*"), "(a.b)*");
}

TEST(ParserTest, WildcardAndOptional) {
  EXPECT_EQ(ParseToString("movieDB.(_)?.movie"), "((movieDB._?).movie)");
}

TEST(ParserTest, DescendantDesugarsToWildcardStar) {
  EXPECT_EQ(ParseToString("a//b"), "(a.(_*.b))");
  EXPECT_EQ(ParseToString("//name"), "name");  // leading // is a no-op
}

TEST(ParserTest, Errors) {
  EXPECT_NE(ParseToString("a.").find("ERROR"), std::string::npos);
  EXPECT_NE(ParseToString("(a"). find("ERROR"), std::string::npos);
  EXPECT_NE(ParseToString("|a").find("ERROR"), std::string::npos);
  EXPECT_NE(ParseToString("a b").find("ERROR"), std::string::npos);
  EXPECT_NE(ParseToString("").find("ERROR"), std::string::npos);
  EXPECT_NE(ParseToString("*a").find("ERROR"), std::string::npos);
}

TEST(AstTest, IsLabelChain) {
  std::string error;
  std::vector<std::string> labels;
  AstPtr chain = ParsePathExpression("director.movie.title", &error);
  ASSERT_NE(chain, nullptr);
  EXPECT_TRUE(IsLabelChain(*chain, &labels));
  EXPECT_EQ(labels,
            (std::vector<std::string>{"director", "movie", "title"}));

  labels.clear();
  AstPtr not_chain = ParsePathExpression("a.b*", &error);
  ASSERT_NE(not_chain, nullptr);
  EXPECT_FALSE(IsLabelChain(*not_chain, &labels));
}

TEST(AstTest, FactoryShapes) {
  AstPtr n = AstNode::Alt(AstNode::Label("x"),
                          AstNode::Star(AstNode::Wildcard()));
  EXPECT_EQ(AstToString(*n), "(x|_*)");
}

}  // namespace
}  // namespace dki
