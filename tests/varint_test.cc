// Unit tests for the LEB128/zigzag byte-level codec (io/varint.h) and the
// block-compressed CSR built on it (query/csr_codec.h) — the vocabulary of
// the binary v2 persistence formats and the budgeted FrozenView.

#include "io/varint.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/random.h"
#include "query/csr_codec.h"

namespace dki {
namespace {

TEST(VarintTest, EncodesCanonicalSizes) {
  char buf[kMaxVarintBytes];
  EXPECT_EQ(EncodeVarint(0, buf), 1u);
  EXPECT_EQ(EncodeVarint(127, buf), 1u);
  EXPECT_EQ(EncodeVarint(128, buf), 2u);
  EXPECT_EQ(EncodeVarint(16383, buf), 2u);
  EXPECT_EQ(EncodeVarint(16384, buf), 3u);
  EXPECT_EQ(EncodeVarint(std::numeric_limits<uint64_t>::max(), buf), 10u);
}

TEST(VarintTest, RoundTripsBoundaryValues) {
  const uint64_t cases[] = {0,
                            1,
                            127,
                            128,
                            255,
                            256,
                            (1ull << 14) - 1,
                            1ull << 14,
                            (1ull << 21) - 1,
                            1ull << 21,
                            (1ull << 28),
                            (1ull << 35),
                            (1ull << 42),
                            (1ull << 49),
                            (1ull << 56),
                            (1ull << 63),
                            std::numeric_limits<uint64_t>::max()};
  std::string buf;
  for (uint64_t v : cases) AppendVarint(v, &buf);
  size_t pos = 0;
  for (uint64_t v : cases) {
    uint64_t got = 0;
    ASSERT_TRUE(GetVarint(buf, &pos, &got));
    EXPECT_EQ(got, v);
  }
  EXPECT_EQ(pos, buf.size());
}

TEST(VarintTest, RandomRoundTripProperty) {
  Rng rng(41);
  std::vector<uint64_t> values;
  std::string buf;
  for (int i = 0; i < 5000; ++i) {
    // Vary magnitude so every encoded length is exercised.
    const int bits = static_cast<int>(rng.UniformInt(0, 63));
    uint64_t v = static_cast<uint64_t>(rng.UniformInt(
        0, std::numeric_limits<int64_t>::max()));
    v &= (bits == 63) ? ~0ull : ((1ull << (bits + 1)) - 1);
    values.push_back(v);
    AppendVarint(v, &buf);
  }
  size_t pos = 0;
  for (uint64_t v : values) {
    uint64_t got = 0;
    ASSERT_TRUE(GetVarint(buf, &pos, &got));
    ASSERT_EQ(got, v);
  }
  EXPECT_EQ(pos, buf.size());
}

TEST(VarintTest, RejectsTruncation) {
  std::string buf;
  AppendVarint(1ull << 42, &buf);
  for (size_t cut = 0; cut < buf.size(); ++cut) {
    size_t pos = 0;
    uint64_t out = 0;
    EXPECT_FALSE(GetVarint(std::string_view(buf).substr(0, cut), &pos, &out))
        << "cut=" << cut;
  }
}

TEST(VarintTest, RejectsOverlongEncodings) {
  // Eleven continuation bytes: longer than any canonical 64-bit varint.
  std::string bad(11, '\x80');
  bad.push_back('\x01');
  size_t pos = 0;
  uint64_t out = 0;
  EXPECT_FALSE(GetVarint(bad, &pos, &out));

  // Ten bytes whose final byte carries more than the one remaining bit.
  std::string overflow(9, '\x80');
  overflow.push_back('\x02');
  pos = 0;
  EXPECT_FALSE(GetVarint(overflow, &pos, &out));
}

TEST(VarintTest, ZigZagMapsSmallMagnitudesToSmallCodes) {
  EXPECT_EQ(ZigZagEncode(0), 0u);
  EXPECT_EQ(ZigZagEncode(-1), 1u);
  EXPECT_EQ(ZigZagEncode(1), 2u);
  EXPECT_EQ(ZigZagEncode(-2), 3u);
  const int64_t cases[] = {0,
                           1,
                           -1,
                           63,
                           -64,
                           std::numeric_limits<int64_t>::max(),
                           std::numeric_limits<int64_t>::min()};
  for (int64_t v : cases) {
    EXPECT_EQ(ZigZagDecode(ZigZagEncode(v)), v) << v;
  }
}

TEST(VarintTest, DeltaArrayRoundTripsUnsortedRuns) {
  Rng rng(43);
  for (int trial = 0; trial < 50; ++trial) {
    const int n = static_cast<int>(rng.UniformInt(0, 200));
    std::vector<int32_t> values;
    for (int i = 0; i < n; ++i) {
      values.push_back(static_cast<int32_t>(rng.UniformInt(
          std::numeric_limits<int32_t>::min(),
          std::numeric_limits<int32_t>::max())));
    }
    std::string buf;
    AppendDeltaArray(values.data(), values.size(), &buf);
    size_t pos = 0;
    std::vector<int32_t> decoded(values.size());
    ASSERT_TRUE(GetDeltaArray(buf, &pos, decoded.size(), decoded.data()));
    EXPECT_EQ(decoded, values);
    EXPECT_EQ(pos, buf.size());
  }
}

TEST(VarintTest, SortedIdsEncodeNearOneBytePerValue) {
  // The claim the v2 size win rests on: dense sorted id runs cost ~1
  // byte/value as deltas.
  std::vector<int32_t> ids;
  for (int32_t i = 0; i < 10000; ++i) ids.push_back(i * 3);
  std::string buf;
  AppendDeltaArray(ids.data(), ids.size(), &buf);
  EXPECT_EQ(buf.size(), ids.size());  // delta 3 zigzags to 6: one byte each
}

// ---------------------------------------------------------------------------
// CompressedCsr + BlockCache
// ---------------------------------------------------------------------------

// Flat CSR fixture with adversarial degree mix: empty rows, degree-1 rows,
// and occasional huge rows crossing block-decode buffer sizes.
struct FlatCsr {
  std::vector<int32_t> off;
  std::vector<int32_t> values;
};

FlatCsr RandomCsr(int64_t rows, Rng* rng) {
  FlatCsr csr;
  csr.off.push_back(0);
  for (int64_t r = 0; r < rows; ++r) {
    int degree = 0;
    const int64_t kind = rng->UniformInt(0, 9);
    if (kind < 4) {
      degree = 0;
    } else if (kind < 8) {
      degree = static_cast<int>(rng->UniformInt(1, 8));
    } else {
      degree = static_cast<int>(rng->UniformInt(50, 400));
    }
    int32_t v = static_cast<int32_t>(rng->UniformInt(0, 100));
    for (int i = 0; i < degree; ++i) {
      // Mostly ascending with occasional back-jumps: realistic adjacency.
      v += static_cast<int32_t>(rng->UniformInt(-30, 200));
      csr.values.push_back(v);
    }
    csr.off.push_back(static_cast<int32_t>(csr.values.size()));
  }
  return csr;
}

TEST(CompressedCsrTest, EveryRowRoundTripsThroughCache) {
  Rng rng(47);
  for (int64_t rows : {0, 1, 63, 64, 65, 500}) {
    FlatCsr flat = RandomCsr(rows, &rng);
    CompressedCsr csr;
    csr.Build(flat.off.data(), flat.values.data(), rows);
    EXPECT_EQ(csr.num_rows(), rows);

    BlockCache cache;
    for (int64_t r = 0; r < rows; ++r) {
      auto [begin, end] = cache.Row(csr, /*array_key=*/1, r);
      const int32_t db = flat.off[static_cast<size_t>(r)];
      const int32_t de = flat.off[static_cast<size_t>(r) + 1];
      ASSERT_EQ(end - begin, de - db) << "row " << r;
      for (int32_t i = 0; i < de - db; ++i) {
        ASSERT_EQ(begin[i], flat.values[static_cast<size_t>(db + i)])
            << "row " << r << " entry " << i;
      }
    }
  }
}

TEST(CompressedCsrTest, RandomAccessPatternMatchesFlat) {
  Rng rng(53);
  FlatCsr flat = RandomCsr(1000, &rng);
  CompressedCsr csr;
  csr.Build(flat.off.data(), flat.values.data(), 1000);

  BlockCache cache;
  for (int probe = 0; probe < 5000; ++probe) {
    const int64_t r = rng.UniformInt(0, 999);
    auto [begin, end] = cache.Row(csr, /*array_key=*/7, r);
    const int32_t db = flat.off[static_cast<size_t>(r)];
    const int32_t de = flat.off[static_cast<size_t>(r) + 1];
    ASSERT_EQ(end - begin, de - db);
    if (de > db) {
      const int32_t i = static_cast<int32_t>(rng.UniformInt(0, de - db - 1));
      ASSERT_EQ(begin[i], flat.values[static_cast<size_t>(db + i)]);
    }
  }
}

TEST(CompressedCsrTest, DistinctArrayKeysDoNotAlias) {
  Rng rng(59);
  FlatCsr a = RandomCsr(200, &rng);
  FlatCsr b = RandomCsr(200, &rng);
  CompressedCsr ca, cb;
  ca.Build(a.off.data(), a.values.data(), 200);
  cb.Build(b.off.data(), b.values.data(), 200);

  // Interleave accesses under two keys through ONE cache; a keying bug
  // would serve one array's block for the other.
  BlockCache cache;
  for (int64_t r = 0; r < 200; ++r) {
    auto [ab, ae] = cache.Row(ca, /*array_key=*/11, r);
    ASSERT_EQ(ae - ab,
              a.off[static_cast<size_t>(r) + 1] - a.off[static_cast<size_t>(r)]);
    auto [bb, be] = cache.Row(cb, /*array_key=*/12, r);
    ASSERT_EQ(be - bb,
              b.off[static_cast<size_t>(r) + 1] - b.off[static_cast<size_t>(r)]);
    for (const int32_t* p = bb; p != be; ++p) {
      ASSERT_EQ(*p, b.values[static_cast<size_t>(
                        b.off[static_cast<size_t>(r)] + (p - bb))]);
    }
  }
}

TEST(CompressedCsrTest, RebaseDecodesFromExternalBytes) {
  Rng rng(61);
  FlatCsr flat = RandomCsr(300, &rng);
  CompressedCsr csr;
  csr.Build(flat.off.data(), flat.values.data(), 300);

  // Copy the payload elsewhere (standing in for the mmap'd spill file) and
  // re-base; decoding must be unaffected and the owned buffer released.
  std::string external = csr.bytes();
  csr.Rebase(external.data());
  EXPECT_TRUE(csr.bytes().empty());

  BlockCache cache;
  for (int64_t r = 0; r < 300; ++r) {
    auto [begin, end] = cache.Row(csr, /*array_key=*/3, r);
    const int32_t db = flat.off[static_cast<size_t>(r)];
    const int32_t de = flat.off[static_cast<size_t>(r) + 1];
    ASSERT_EQ(end - begin, de - db);
    for (int32_t i = 0; i < de - db; ++i) {
      ASSERT_EQ(begin[i], flat.values[static_cast<size_t>(db + i)]);
    }
  }
}

TEST(CompressedCsrTest, SortedAdjacencyCompressesWell) {
  // 64k rows of sorted neighbours ~ what FrozenView feeds it; expect well
  // under 4 bytes/value (the flat cost) plus the flat offset array gone.
  std::vector<int32_t> off = {0};
  std::vector<int32_t> values;
  int32_t next = 0;
  for (int r = 0; r < 65536; ++r) {
    for (int i = 0; i < 4; ++i) values.push_back(next += 2);
    if (next > 1 << 20) next = 0;
    off.push_back(static_cast<int32_t>(values.size()));
  }
  CompressedCsr csr;
  csr.Build(off.data(), values.data(), 65536);
  EXPECT_LT(csr.encoded_bytes(),
            static_cast<int64_t>(values.size()) * 2);  // vs 4 flat
}

}  // namespace
}  // namespace dki
