// Tests of the memory-budgeted FrozenView storage tier (query/frozen_view.h
// + query/csr_codec.h): budgeted and spilled views must answer every query
// bit-identically to the flat representation — results AND EvalStats — at a
// fraction of the resident memory, including under concurrent readers and
// through the QueryServer publish path.

#include "query/frozen_view.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "common/thread_pool.h"
#include "datagen/nasa_generator.h"
#include "datagen/xmark_generator.h"
#include "graph/data_graph.h"
#include "index/dk_index.h"
#include "query/evaluator.h"
#include "serve/apply.h"
#include "serve/query_server.h"
#include "tests/test_util.h"

namespace dki {
namespace {

// A budget of one byte always forces compression AND the spill (nothing
// fits); a huge budget forces compression without the spill.
constexpr int64_t kForceSpill = 1;
constexpr int64_t kNoSpill = int64_t{1} << 40;

std::vector<std::string> Probes(const DataGraph& g, int count, Rng* rng) {
  std::vector<std::string> out = {g.label_name(1)};
  for (int i = 1; i < count; ++i) {
    out.push_back(testing_util::RandomChainQuery(
        g, static_cast<int>(rng->UniformInt(1, 4)), rng));
  }
  return out;
}

void ExpectSameStats(const EvalStats& got, const EvalStats& want,
                     const std::string& what) {
  EXPECT_EQ(got.index_nodes_visited, want.index_nodes_visited) << what;
  EXPECT_EQ(got.data_nodes_visited, want.data_nodes_visited) << what;
  EXPECT_EQ(got.validated_candidates, want.validated_candidates) << what;
  EXPECT_EQ(got.uncertain_index_nodes, want.uncertain_index_nodes) << what;
  EXPECT_EQ(got.result_size, want.result_size) << what;
}

void RunDifferential(DataGraph& g, DkIndex& dk, int64_t budget,
                     const std::string& name) {
  // Pin the reference backend on both sides: this helper compares EvalStats,
  // which are only defined to match under a forced backend (under kAuto the
  // planner's DFA warmup depends on per-query evaluation counts, which the
  // two views advance in interleaved order).
  FrozenViewOptions flat_options;
  flat_options.backend = EvalBackendMode::kNfa;
  FrozenView flat(dk.index(), flat_options);
  FrozenViewOptions options;
  options.memory_budget_bytes = budget;
  options.backend = EvalBackendMode::kNfa;
  FrozenView budgeted(dk.index(), options);
  EXPECT_TRUE(budgeted.budgeted());
  EXPECT_FALSE(flat.budgeted());

  Rng rng(103);
  FrozenScratch flat_scratch, budget_scratch;
  for (const std::string& probe : Probes(g, 25, &rng)) {
    PathExpression q = testing_util::MustParse(probe, g.labels());
    for (bool validate : {true, false}) {
      EvalStats flat_stats, budget_stats;
      EXPECT_EQ(
          budgeted.Evaluate(q, &budget_stats, validate, &budget_scratch),
          flat.Evaluate(q, &flat_stats, validate, &flat_scratch))
          << name << " '" << probe << "' validate=" << validate;
      ExpectSameStats(budget_stats, flat_stats,
                      name + " '" + probe + "' stats");
    }
    EvalStats flat_stats, budget_stats;
    EXPECT_EQ(budgeted.EvaluateOnData(q, &budget_stats, &budget_scratch),
              flat.EvaluateOnData(q, &flat_stats, &flat_scratch))
        << name << " '" << probe << "' on data";
    ExpectSameStats(budget_stats, flat_stats,
                    name + " '" + probe + "' data stats");
  }
}

TEST(FrozenBudgetTest, RandomGraphsBitIdenticalCompressed) {
  Rng rng(107);
  for (int trial = 0; trial < 5; ++trial) {
    DataGraph g = testing_util::RandomGraph(400, 6, 80, &rng);
    LabelRequirements reqs;
    reqs[g.label(static_cast<NodeId>(rng.UniformInt(1, g.NumNodes() - 1)))] =
        2;
    DkIndex dk = DkIndex::Build(&g, reqs);
    RunDifferential(g, dk, kNoSpill, "random/compressed");
    RunDifferential(g, dk, kForceSpill, "random/spilled");
  }
}

TEST(FrozenBudgetTest, XmarkBitIdenticalSpilled) {
  XmarkOptions options;
  options.scale = 0.25;
  DataGraph g = GenerateXmarkGraph(options).graph;
  DkIndex dk = DkIndex::Build(&g, {});
  RunDifferential(g, dk, kForceSpill, "xmark/spilled");
}

TEST(FrozenBudgetTest, NasaBitIdenticalCompressed) {
  NasaOptions options;
  options.scale = 0.25;
  DataGraph g = GenerateNasaGraph(options).graph;
  DkIndex dk = DkIndex::Build(&g, {});
  RunDifferential(g, dk, kNoSpill, "nasa/compressed");
}

TEST(FrozenBudgetTest, MemoryStatsAccounting) {
  XmarkOptions options;
  options.scale = 0.5;
  DataGraph g = GenerateXmarkGraph(options).graph;
  DkIndex dk = DkIndex::Build(&g, {});

  FrozenView flat(dk.index());
  const FrozenMemoryStats& fs = flat.memory_stats();
  EXPECT_EQ(fs.resident_bytes, fs.flat_bytes);
  EXPECT_EQ(fs.compressed_bytes, 0);
  EXPECT_EQ(fs.spilled_bytes, 0);
  EXPECT_EQ(flat.ApproxBytes(), fs.flat_bytes);

  FrozenViewOptions no_spill;
  no_spill.memory_budget_bytes = kNoSpill;
  FrozenView compressed(dk.index(), no_spill);
  const FrozenMemoryStats& cs = compressed.memory_stats();
  EXPECT_EQ(cs.flat_bytes, fs.flat_bytes);  // same source state
  EXPECT_GT(cs.compressed_bytes, 0);
  EXPECT_EQ(cs.spilled_bytes, 0);
  EXPECT_LT(cs.resident_bytes, cs.flat_bytes);

  FrozenViewOptions spill;
  spill.memory_budget_bytes = kForceSpill;
  FrozenView spilled(dk.index(), spill);
  const FrozenMemoryStats& ss = spilled.memory_stats();
  EXPECT_EQ(ss.compressed_bytes, cs.compressed_bytes);
  EXPECT_EQ(ss.spilled_bytes, ss.compressed_bytes);
  EXPECT_LT(ss.resident_bytes, cs.resident_bytes);
  // The acceptance target: a spilled view holds <= 1/3 the flat bytes.
  EXPECT_LE(ss.resident_bytes * 3, ss.flat_bytes)
      << "resident " << ss.resident_bytes << "B vs flat " << ss.flat_bytes
      << "B";
}

TEST(FrozenBudgetTest, EvaluateBatchMatchesFlatAcrossLaneCounts) {
  XmarkOptions options;
  options.scale = 0.2;
  DataGraph g = GenerateXmarkGraph(options).graph;
  DkIndex dk = DkIndex::Build(&g, {});

  FrozenView flat(dk.index());
  FrozenViewOptions budget;
  budget.memory_budget_bytes = kForceSpill;
  FrozenView budgeted(dk.index(), budget);

  Rng rng(109);
  std::vector<PathExpression> queries;
  for (const std::string& probe : Probes(g, 40, &rng)) {
    queries.push_back(testing_util::MustParse(probe, g.labels()));
  }

  std::vector<std::vector<NodeId>> want = flat.EvaluateBatch(
      queries, /*pool=*/nullptr);
  for (int threads : {1, 2, 4}) {
    ThreadPool pool(threads);
    std::vector<std::unique_ptr<FrozenScratch>> lanes;
    std::vector<EvalStats> stats;
    EXPECT_EQ(budgeted.EvaluateBatch(queries, &pool, &stats, true, &lanes),
              want)
        << threads << " lanes";
  }
}

// Many reader threads sharing one spilled view, each with its own scratch
// (and so its own BlockCache) — the serving configuration TSan must bless.
TEST(FrozenBudgetTest, ConcurrentReadersOnSpilledView) {
  Rng rng(113);
  DataGraph g = testing_util::RandomGraph(300, 5, 60, &rng);
  DkIndex dk = DkIndex::Build(&g, {});

  FrozenView flat(dk.index());
  FrozenViewOptions budget;
  budget.memory_budget_bytes = kForceSpill;
  FrozenView budgeted(dk.index(), budget);

  std::vector<std::string> probes = Probes(g, 8, &rng);
  std::vector<PathExpression> queries;
  std::vector<std::vector<NodeId>> want;
  for (const std::string& probe : probes) {
    queries.push_back(testing_util::MustParse(probe, g.labels()));
    want.push_back(flat.Evaluate(queries.back()));
  }

  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&, t] {
      FrozenScratch scratch;
      for (int round = 0; round < 30; ++round) {
        const size_t qi = static_cast<size_t>((t + round) % queries.size());
        EXPECT_EQ(budgeted.Evaluate(queries[qi], nullptr, true, &scratch),
                  want[qi]);
      }
    });
  }
  for (std::thread& t : readers) t.join();
}

// One scratch surviving a snapshot swap must not serve stale cached blocks:
// distinct views get distinct cache keys even at equal graph shapes.
TEST(FrozenBudgetTest, ScratchSurvivesViewSwapWithoutStaleness) {
  Rng rng(127);
  DataGraph g = testing_util::RandomGraph(250, 5, 50, &rng);
  DkIndex dk = DkIndex::Build(&g, {});

  // Same index frozen twice: identical content, distinct view identities.
  FrozenViewOptions budget;
  budget.memory_budget_bytes = kForceSpill;
  auto view1 = std::make_unique<FrozenView>(dk.index(), budget);

  // Mutate, freeze again — different adjacency under the same node ids.
  const NodeId u = static_cast<NodeId>(rng.UniformInt(1, g.NumNodes() - 1));
  const NodeId v = static_cast<NodeId>(rng.UniformInt(1, g.NumNodes() - 1));
  ApplyUpdateOp(&dk, UpdateOp::AddEdge(u, v));
  FrozenView view2(dk.index(), budget);
  FrozenView flat2(dk.index());

  FrozenScratch scratch;  // shared across both views, like a server thread
  Rng prng(131);
  for (const std::string& probe : Probes(g, 10, &prng)) {
    PathExpression q = testing_util::MustParse(probe, g.labels());
    (void)view1->Evaluate(q, nullptr, true, &scratch);  // warm the cache
    EXPECT_EQ(view2.Evaluate(q, nullptr, true, &scratch),
              flat2.Evaluate(q))
        << "'" << probe << "' served stale blocks after view swap";
  }
}

// End-to-end through the serving stack: a budgeted server answers exactly
// like an unbudgeted one.
TEST(FrozenBudgetTest, QueryServerServesBitIdenticalUnderBudget) {
  Rng rng(137);
  DataGraph g = testing_util::RandomGraph(300, 6, 60, &rng);
  DkIndex dk = DkIndex::Build(&g, {});

  QueryServer::Options flat_options;
  QueryServer::Options budget_options;
  budget_options.frozen.memory_budget_bytes = 1;  // force compress + spill
  QueryServer flat_server(dk, flat_options);
  QueryServer budget_server(dk, budget_options);

  EXPECT_TRUE(budget_server.snapshot()->frozen().budgeted());
  EXPECT_FALSE(flat_server.snapshot()->frozen().budgeted());

  std::vector<std::string> probes = Probes(g, 15, &rng);
  for (const std::string& probe : probes) {
    auto flat_result = flat_server.Evaluate(probe);
    auto budget_result = budget_server.Evaluate(probe);
    ASSERT_TRUE(flat_result.has_value()) << probe;
    ASSERT_TRUE(budget_result.has_value()) << probe;
    EXPECT_EQ(*budget_result, *flat_result) << probe;
  }

  // Mutations republish budgeted snapshots; answers stay identical.
  for (int i = 0; i < 20; ++i) {
    const NodeId u = static_cast<NodeId>(rng.UniformInt(1, g.NumNodes() - 1));
    const NodeId v = static_cast<NodeId>(rng.UniformInt(1, g.NumNodes() - 1));
    ASSERT_TRUE(flat_server.SubmitAddEdge(u, v));
    ASSERT_TRUE(budget_server.SubmitAddEdge(u, v));
  }
  flat_server.Flush();
  budget_server.Flush();
  for (const std::string& probe : probes) {
    EXPECT_EQ(*budget_server.Evaluate(probe), *flat_server.Evaluate(probe))
        << probe << " after updates";
  }
  flat_server.Stop();
  budget_server.Stop();
}

}  // namespace
}  // namespace dki
