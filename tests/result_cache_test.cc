#include "query/result_cache.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/random.h"
#include "common/thread_pool.h"
#include "datagen/nasa_generator.h"
#include "datagen/xmark_generator.h"
#include "index/ak_index.h"
#include "index/dk_index.h"
#include "query/evaluator.h"
#include "query/load_analyzer.h"
#include "tests/test_util.h"

namespace dki {
namespace {

TEST(CanonicalizeQueryTest, NormalizesTokenSpacing) {
  EXPECT_EQ(CanonicalizeQuery("a.b.c"), "a.b.c");
  EXPECT_EQ(CanonicalizeQuery("a . b\t.  c"), "a.b.c");
  EXPECT_EQ(CanonicalizeQuery("(a|b)* . _ // c"), "(a|b)*._//c");
  // Untokenizable input falls through unchanged (it cannot be a live query).
  EXPECT_EQ(CanonicalizeQuery("a.%"), "a.%");
}

TEST(ResultCacheTest, HitOnRepeatedQuery) {
  DataGraph g = testing_util::BuildMovieGraph();
  LabelRequirements reqs;
  reqs[g.labels().Find("title")] = 2;
  DkIndex dk = DkIndex::Build(&g, reqs);

  ResultCache cache;
  PathExpression q =
      testing_util::MustParse("director.movie.title", g.labels());
  EvalStats first_stats;
  auto first = cache.CachedEvaluate(dk.index(), q, &first_stats);
  EXPECT_EQ(cache.stats().hits, 0);
  EXPECT_EQ(cache.stats().misses, 1);

  // A textual variant of the same query hits the same entry.
  PathExpression variant =
      testing_util::MustParse("director . movie . title", g.labels());
  EvalStats hit_stats;
  auto second = cache.CachedEvaluate(dk.index(), variant, &hit_stats);
  EXPECT_EQ(first, second);
  EXPECT_EQ(cache.stats().hits, 1);
  // A hit visits nothing: its only stat contribution is the result size.
  EXPECT_EQ(hit_stats.index_nodes_visited, 0);
  EXPECT_EQ(hit_stats.data_nodes_visited, 0);
  EXPECT_EQ(hit_stats.result_size, first_stats.result_size);
  EXPECT_EQ(first, EvaluateOnIndex(dk.index(), q));
}

TEST(ResultCacheTest, ValidateFlagKeyedSeparately) {
  Rng rng(811);
  DataGraph g = testing_util::RandomGraph(120, 4, 30, &rng);
  LabelRequirements reqs;
  DkIndex dk = DkIndex::Build(&g, reqs);  // k=0 everywhere: all uncertain

  ResultCache cache;
  std::string text = testing_util::RandomChainQuery(g, 3, &rng);
  PathExpression q = testing_util::MustParse(text, g.labels());
  auto validated = cache.CachedEvaluate(dk.index(), q, nullptr, true);
  auto raw = cache.CachedEvaluate(dk.index(), q, nullptr, false);
  EXPECT_EQ(cache.stats().misses, 2);  // different result spaces, no mixups
  EXPECT_EQ(validated, EvaluateOnIndex(dk.index(), q, nullptr, true));
  EXPECT_EQ(raw, EvaluateOnIndex(dk.index(), q, nullptr, false));
}

TEST(ResultCacheTest, AddEdgeInvalidatesViaEpoch) {
  DataGraph g = testing_util::BuildMovieGraph();
  LabelRequirements reqs;
  reqs[g.labels().Find("title")] = 2;
  DkIndex dk = DkIndex::Build(&g, reqs);

  ResultCache cache;
  PathExpression q =
      testing_util::MustParse("actor.movie.title", g.labels());
  auto before = cache.CachedEvaluate(dk.index(), q);

  // Wire another actor to another movie: the query answer grows.
  LabelId actor = g.labels().Find("actor");
  LabelId movie = g.labels().Find("movie");
  NodeId lone_actor = kInvalidNode, unshared_movie = kInvalidNode;
  for (NodeId a : g.NodesWithLabel(actor)) {
    bool has_movie_child = false;
    for (NodeId c : g.children(a)) {
      if (g.label(c) == movie) has_movie_child = true;
    }
    if (!has_movie_child) lone_actor = a;
  }
  for (NodeId m : g.NodesWithLabel(movie)) {
    bool has_actor_parent = false;
    for (NodeId p : g.parents(m)) {
      if (g.label(p) == actor) has_actor_parent = true;
    }
    if (!has_actor_parent) unshared_movie = m;
  }
  ASSERT_NE(lone_actor, kInvalidNode);
  ASSERT_NE(unshared_movie, kInvalidNode);

  uint64_t epoch_before = dk.epoch();
  dk.AddEdge(lone_actor, unshared_movie);
  EXPECT_GT(dk.epoch(), epoch_before);

  auto after = cache.CachedEvaluate(dk.index(), q);
  EXPECT_EQ(cache.stats().stale_drops, 1);
  EXPECT_EQ(cache.stats().hits, 0);
  EXPECT_EQ(after, EvaluateOnIndex(dk.index(), q));
  EXPECT_NE(before, after) << "the new edge should change the answer";
}

TEST(ResultCacheTest, EveryMutationKindBumpsEpoch) {
  Rng rng(813);
  DataGraph g = testing_util::RandomGraph(150, 4, 30, &rng);
  LabelRequirements reqs;
  reqs[static_cast<LabelId>(rng.UniformInt(2, g.labels().size() - 1))] = 2;
  DkIndex dk = DkIndex::Build(&g, reqs);

  uint64_t epoch = dk.epoch();

  // A cached entry stored before each mutation must be stale afterwards:
  // TryGet at the post-mutation epoch drops it and misses.
  ResultCache cache;
  int64_t expected_stale_drops = 0;
  auto expect_invalidated = [&]() {
    std::vector<NodeId> out;
    EXPECT_FALSE(cache.TryGet("probe", dk.epoch(), &out));
    EXPECT_EQ(cache.stats().stale_drops, ++expected_stale_drops);
  };

  // AddEdge (fresh edge).
  NodeId u = kInvalidNode, v = kInvalidNode;
  for (int tries = 0; tries < 200; ++tries) {
    NodeId a = static_cast<NodeId>(rng.UniformInt(1, g.NumNodes() - 1));
    NodeId b = static_cast<NodeId>(rng.UniformInt(1, g.NumNodes() - 1));
    if (a != b && !g.HasEdge(a, b)) {
      u = a;
      v = b;
      break;
    }
  }
  ASSERT_NE(u, kInvalidNode);
  cache.Put("probe", dk.epoch(), {});
  dk.AddEdge(u, v);
  EXPECT_GT(dk.epoch(), epoch);
  expect_invalidated();
  epoch = dk.epoch();

  // AddEdge on an already-present edge is a no-op and need not invalidate.
  dk.AddEdge(u, v);

  // RemoveEdge.
  epoch = dk.epoch();
  cache.Put("probe", dk.epoch(), {});
  ASSERT_TRUE(dk.RemoveEdge(u, v));
  EXPECT_GT(dk.epoch(), epoch);
  expect_invalidated();
  epoch = dk.epoch();

  // AddSubgraph.
  DataGraph h;
  NodeId ha = h.AddNode("sub_x");
  NodeId hb = h.AddNode("sub_y");
  h.AddEdge(h.root(), ha);
  h.AddEdge(ha, hb);
  cache.Put("probe", dk.epoch(), {});
  dk.AddSubgraph(h);
  EXPECT_GT(dk.epoch(), epoch);
  expect_invalidated();
  epoch = dk.epoch();

  // Demote (Theorem 2 quotient rebuild).
  cache.Put("probe", dk.epoch(), {});
  dk.Demote(LabelRequirements{});
  EXPECT_GT(dk.epoch(), epoch);
  expect_invalidated();
  epoch = dk.epoch();

  // Promote back.
  cache.Put("probe", dk.epoch(), {});
  dk.PromoteBatch(reqs);
  EXPECT_GT(dk.epoch(), epoch);
  expect_invalidated();
}

TEST(ResultCacheTest, LruEvictionUnderSmallByteBudget) {
  Rng rng(821);
  DataGraph g = testing_util::RandomGraph(300, 5, 50, &rng);
  LabelRequirements reqs;
  DkIndex dk = DkIndex::Build(&g, reqs);

  ResultCache::Options options;
  options.byte_budget = 600;  // room for only a few entries
  ResultCache cache(options);

  std::vector<std::string> texts;
  for (int i = 0; i < 12; ++i) {
    texts.push_back(testing_util::RandomChainQuery(g, 2, &rng));
  }
  for (const std::string& text : texts) {
    PathExpression q = testing_util::MustParse(text, g.labels());
    cache.CachedEvaluate(dk.index(), q);
  }
  ResultCache::Stats stats = cache.stats();
  EXPECT_GT(stats.evictions, 0);
  EXPECT_LE(stats.bytes, options.byte_budget);
  EXPECT_LT(stats.entries, 12);

  // The most recent distinct query survived; answers stay correct either way.
  PathExpression last = testing_util::MustParse(texts.back(), g.labels());
  auto result = cache.CachedEvaluate(dk.index(), last);
  EXPECT_EQ(result, EvaluateOnIndex(dk.index(), last));
}

TEST(ResultCacheTest, OversizedEntryRejectedWithoutEviction) {
  ResultCache::Options options;
  options.byte_budget = 600;
  ResultCache cache(options);

  cache.Put("small_a", 1, {1, 2, 3});
  cache.Put("small_b", 1, {4, 5, 6});
  ResultCache::Stats before = cache.stats();
  ASSERT_EQ(before.entries, 2);

  // An entry whose own footprint exceeds the entire budget must be turned
  // away up front — inserting it and evicting to budget would wipe every
  // resident entry AND the new one, leaving the cache empty.
  std::vector<NodeId> huge(1024, 7);  // 4 KiB of payload vs a 600 B budget
  cache.Put("huge", 1, huge);

  ResultCache::Stats after = cache.stats();
  EXPECT_EQ(after.entries, 2);
  EXPECT_EQ(after.bytes, before.bytes);
  EXPECT_EQ(after.evictions, 0);
  EXPECT_EQ(after.oversized_rejects, 1);

  std::vector<NodeId> out;
  EXPECT_TRUE(cache.TryGet("small_a", 1, &out));
  EXPECT_EQ(out, (std::vector<NodeId>{1, 2, 3}));
  EXPECT_TRUE(cache.TryGet("small_b", 1, &out));
  EXPECT_FALSE(cache.TryGet("huge", 1, &out));
}

TEST(ResultCacheTest, ConcurrentMixedUseKeepsInvariants) {
  ResultCache::Options options;
  options.byte_budget = 4096;
  ResultCache cache(options);

  // Hammer TryGet/Put/Clear/stats from the thread pool; the assertions are
  // the invariants (budget respected, stats consistent) plus, under TSan,
  // the absence of data races.
  ThreadPool pool(4);
  constexpr int64_t kIters = 2000;
  pool.ParallelFor(kIters, 8, [&](int chunk, int64_t begin, int64_t end) {
    (void)chunk;
    for (int64_t i = begin; i < end; ++i) {
      std::string key = "q" + std::to_string(i % 17);
      uint64_t epoch = static_cast<uint64_t>(i % 3);
      switch (i % 5) {
        case 0:
        case 1:
          cache.Put(key, epoch,
                    std::vector<NodeId>(static_cast<size_t>(i % 9),
                                        static_cast<NodeId>(i)));
          break;
        case 2:
        case 3: {
          std::vector<NodeId> out;
          cache.TryGet(key, epoch, &out);
          break;
        }
        case 4:
          if (i % 401 == 0) {
            cache.Clear();
          } else {
            ResultCache::Stats s = cache.stats();
            EXPECT_GE(s.bytes, 0);
            EXPECT_LE(s.bytes, options.byte_budget);
          }
          break;
      }
    }
  });

  ResultCache::Stats s = cache.stats();
  EXPECT_LE(s.bytes, options.byte_budget);
  EXPECT_GE(s.hits + s.misses, 0);
}

TEST(ResultCacheTest, CachedMatchesUncachedOnXmarkSeed) {
  XmarkOptions options;
  options.scale = 0.08;
  DataGraph g = GenerateXmarkGraph(options).graph;
  Rng rng(823);
  std::vector<std::string> texts;
  for (int i = 0; i < 12; ++i) {
    texts.push_back(testing_util::RandomChainQuery(
        g, static_cast<int>(rng.UniformInt(2, 4)), &rng));
  }
  LabelRequirements reqs = MineRequirementsFromText(texts, g.labels());
  DkIndex dk = DkIndex::Build(&g, reqs);

  ResultCache cache;
  for (int pass = 0; pass < 2; ++pass) {
    for (const std::string& text : texts) {
      PathExpression q = testing_util::MustParse(text, g.labels());
      EXPECT_EQ(cache.CachedEvaluate(dk.index(), q),
                EvaluateOnIndex(dk.index(), q))
          << text << " pass " << pass;
    }
  }
  // Second pass is all hits: results are bit-identical stored vectors.
  EXPECT_GE(cache.stats().hits, 12);
}

TEST(ResultCacheTest, CachedMatchesUncachedOnNasaSeedAcrossUpdates) {
  NasaOptions options;
  options.scale = 0.3;
  DataGraph g = GenerateNasaGraph(options).graph;
  Rng rng(827);
  std::vector<std::string> texts;
  for (int i = 0; i < 8; ++i) {
    texts.push_back(testing_util::RandomChainQuery(
        g, static_cast<int>(rng.UniformInt(2, 4)), &rng));
  }
  LabelRequirements reqs = MineRequirementsFromText(texts, g.labels());
  DkIndex dk = DkIndex::Build(&g, reqs);

  ResultCache cache;
  for (int round = 0; round < 3; ++round) {
    for (const std::string& text : texts) {
      PathExpression q = testing_util::MustParse(text, g.labels());
      EXPECT_EQ(cache.CachedEvaluate(dk.index(), q),
                EvaluateOnIndex(dk.index(), q))
          << text << " round " << round;
    }
    // Mutate between rounds; stale entries must never be served.
    NodeId a = static_cast<NodeId>(rng.UniformInt(1, g.NumNodes() - 1));
    NodeId b = static_cast<NodeId>(rng.UniformInt(1, g.NumNodes() - 1));
    if (a != b && !g.HasEdge(a, b)) dk.AddEdge(a, b);
  }
  EXPECT_GT(cache.stats().stale_drops, 0);
}

}  // namespace
}  // namespace dki
