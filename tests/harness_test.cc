// The experiment harness itself is load-bearing for every number in
// EXPERIMENTS.md — test its recipes: dataset reproducibility, workload
// construction, the Section 6.2 edge recipe, and row aggregation.

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <utility>

#include "bench/bench_common.h"
#include "bench/bench_json.h"
#include "common/random.h"
#include "index/ak_index.h"
#include "query/evaluator.h"

namespace dki {
namespace bench {
namespace {

TEST(HarnessTest, DatasetsAreReproducible) {
  Dataset a = MakeXmark(0.2);
  Dataset b = MakeXmark(0.2);
  EXPECT_EQ(a.graph.NumNodes(), b.graph.NumNodes());
  EXPECT_EQ(a.graph.NumEdges(), b.graph.NumEdges());
  Dataset n = MakeNasa(0.2);
  EXPECT_EQ(n.name, "Nasa");
  EXPECT_GT(n.graph.NumNodes(), 0);
}

TEST(HarnessTest, WorkloadRecipeIsStable) {
  Dataset d = MakeXmark(0.2);
  auto w1 = MakeWorkload(d.graph, 50, 123);
  auto w2 = MakeWorkload(d.graph, 50, 123);
  ASSERT_EQ(w1.size(), 50u);
  ASSERT_EQ(w2.size(), 50u);
  for (size_t i = 0; i < w1.size(); ++i) {
    EXPECT_EQ(w1[i].text(), w2[i].text());
  }
  // Every query is non-empty on its dataset (the §6.1 guarantee).
  for (const PathExpression& q : w1) {
    EXPECT_FALSE(EvaluateOnDataGraph(d.graph, q).empty()) << q.text();
  }
}

TEST(HarnessTest, MinedRequirementsCapAtFour) {
  // The experiments compare against A(4) as the sound horizon; mined
  // requirements must never exceed 4 (paths have 2..5 labels = 1..4 edges).
  Dataset d = MakeXmark(0.2);
  auto workload = MakeWorkload(d.graph, 100, 7);
  LabelRequirements reqs = MineWorkloadRequirements(workload, d.graph.labels());
  EXPECT_FALSE(reqs.empty());
  for (const auto& [label, k] : reqs) {
    EXPECT_GE(k, 1);
    EXPECT_LE(k, 4);
  }
}

TEST(HarnessTest, UpdateEdgesFollowTheRecipe) {
  Dataset d = MakeXmark(0.2);
  auto edges = MakeUpdateEdges(d, 100, 42);
  ASSERT_EQ(edges.size(), 100u);
  // Endpoints respect some ID/IDREF label pair of the DTD.
  std::set<std::pair<LabelId, LabelId>> allowed;
  for (const auto& [from, to] : d.ref_pairs) {
    LabelId lf = d.graph.labels().Find(from);
    LabelId lt = d.graph.labels().Find(to);
    if (lf != kInvalidLabel && lt != kInvalidLabel) allowed.emplace(lf, lt);
  }
  for (const auto& [u, v] : edges) {
    EXPECT_TRUE(allowed.count({d.graph.label(u), d.graph.label(v)}) > 0);
  }
  // Deterministic per seed.
  auto again = MakeUpdateEdges(d, 100, 42);
  EXPECT_EQ(edges, again);
  auto other = MakeUpdateEdges(d, 100, 43);
  EXPECT_NE(edges, other);
}

TEST(HarnessTest, SeriesRowAggregation) {
  Dataset d = MakeXmark(0.1);
  AkIndex a2 = AkIndex::Build(&d.graph, 2);
  auto workload = MakeWorkload(d.graph, 20, 9);
  SeriesRow row = MakeRow("A(2)", a2.index(), workload);
  EXPECT_EQ(row.index_name, "A(2)");
  EXPECT_EQ(row.index_nodes, a2.index().NumIndexNodes());
  EXPECT_GT(row.avg_cost, 0.0);

  // Row cost equals the mean of per-query costs.
  EvalStats total;
  for (const PathExpression& q : workload) {
    EvaluateOnIndex(a2.index(), q, &total);
  }
  EXPECT_DOUBLE_EQ(row.avg_cost,
                   static_cast<double>(total.cost()) /
                       static_cast<double>(workload.size()));
}

TEST(HarnessTest, JsonDoublesSurviveEmitParseEmitExactly) {
  // The old %.6g emitter silently rounded doubles to 6 significant digits,
  // so any pipeline that parses a benchmark JSON and re-emits it (series
  // aggregation, CI comparisons) corrupted timestamps, rates, and long
  // counters. Emission now picks the shortest form that strtod round-trips.
  const double cases[] = {
      0.0,
      -0.0,
      1.0 / 3.0,
      0.1,
      123456789.123456,            // > 6 significant digits
      1755021712345678848.0,       // nanosecond-scale timestamp
      98765.432109876543,
      6.02214076e23,
      5e-324,                      // min subnormal
      1.7976931348623157e308,      // max double
  };
  for (double v : cases) {
    Json j = Json::Num(v);
    const std::string emitted = j.ToString();
    Json parsed;
    std::string error;
    ASSERT_TRUE(Json::Parse(emitted, &parsed, &error))
        << emitted << ": " << error;
    EXPECT_EQ(parsed.AsDouble(), v) << "value corrupted through '" << emitted
                                    << "'";
    // Emit -> parse -> emit is a fixed point: byte-identical second pass.
    EXPECT_EQ(parsed.ToString(), emitted);
  }

  // Whole nested documents too, with adversarial random doubles.
  Rng rng(139);
  Json doc = Json::Object();
  Json arr = Json::Array();
  for (int i = 0; i < 200; ++i) {
    const double v =
        static_cast<double>(rng.UniformInt(1, int64_t{1} << 62)) /
        static_cast<double>(rng.UniformInt(1, 1000000));
    arr.Push(Json::Num(v));
  }
  doc.Set("values", std::move(arr));
  const std::string once = doc.ToString();
  Json reparsed;
  std::string error;
  ASSERT_TRUE(Json::Parse(once, &reparsed, &error)) << error;
  EXPECT_EQ(reparsed.ToString(), once);
  for (size_t i = 0; i < 200; ++i) {
    EXPECT_EQ(reparsed.Find("values")->items()[i].AsDouble(),
              doc.Find("values")->items()[i].AsDouble());
  }
}

TEST(HarnessTest, ScaleFromEnvParsesAndClamps) {
  // Only exercised when DKI_SCALE is unset in the test environment.
  if (std::getenv("DKI_SCALE") == nullptr) {
    EXPECT_DOUBLE_EQ(ScaleFromEnv(), 1.0);
  }
  setenv("DKI_SCALE", "2.5", 1);
  EXPECT_DOUBLE_EQ(ScaleFromEnv(), 2.5);
  setenv("DKI_SCALE", "0.0001", 1);
  EXPECT_DOUBLE_EQ(ScaleFromEnv(), 0.05);  // clamped
  setenv("DKI_SCALE", "1e9", 1);
  EXPECT_DOUBLE_EQ(ScaleFromEnv(), 100.0);  // clamped
  unsetenv("DKI_SCALE");
}

}  // namespace
}  // namespace bench
}  // namespace dki
