// Differential suite for the incremental maintenance engine
// (src/index/dk_incremental.cc): a DkIndex in the default kIncremental mode
// must stay indistinguishable — partition, local similarities, evaluation
// results and evaluation costs — from one in kFullRebuild mode (and from a
// fresh DkIndex::Build) across randomized interleaved update/tuning
// streams. Wired into the TSan CI job alongside serve_test.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/random.h"
#include "datagen/nasa_generator.h"
#include "datagen/xmark_generator.h"
#include "index/dk_index.h"
#include "query/evaluator.h"
#include "serve/apply.h"
#include "serve/query_server.h"
#include "tests/test_util.h"

namespace dki {
namespace {

// Same-partition-same-k assertion (the dk_tuning_test helper): block
// NUMBERING may differ between the two engines — pass A/B of the
// incremental path allocates ids in projection order, the full path in
// signature-scan order — but the grouping and every k must agree.
void ExpectSameIndex(const IndexGraph& a, const IndexGraph& b) {
  ASSERT_EQ(a.graph().NumNodes(), b.graph().NumNodes());
  ASSERT_EQ(a.NumIndexNodes(), b.NumIndexNodes());
  std::vector<IndexNodeId> map(static_cast<size_t>(a.NumIndexNodes()),
                               kInvalidNode);
  for (NodeId n = 0; n < a.graph().NumNodes(); ++n) {
    IndexNodeId ia = a.index_of(n);
    if (map[static_cast<size_t>(ia)] == kInvalidNode) {
      map[static_cast<size_t>(ia)] = b.index_of(n);
    }
    ASSERT_EQ(map[static_cast<size_t>(ia)], b.index_of(n))
        << "partition differs at node " << n;
    ASSERT_EQ(a.k(ia), b.k(b.index_of(n)))
        << "local similarity differs at node " << n;
  }
}

LabelRequirements RandomReqs(const DataGraph& g, Rng* rng, int count,
                             int max_k) {
  LabelRequirements reqs;
  for (int i = 0; i < count; ++i) {
    reqs[static_cast<LabelId>(rng->UniformInt(2, g.labels().size() - 1))] =
        static_cast<int>(rng->UniformInt(1, max_k));
  }
  return reqs;
}

// A small attachable document: a couple of levels below the root, labels
// drawn from the host graph's alphabet plus occasionally a fresh one.
DataGraph RandomSubgraph(const DataGraph& host, Rng* rng) {
  DataGraph h;
  std::vector<std::string> labels;
  for (LabelId l = 2; l < host.labels().size(); ++l) {
    labels.push_back(host.labels().Name(l));
  }
  if (rng->UniformInt(0, 3) == 0) labels.push_back("fresh_label");
  int n = static_cast<int>(rng->UniformInt(3, 10));
  for (int i = 0; i < n; ++i) {
    NodeId node = h.AddNode(labels[static_cast<size_t>(
        rng->UniformInt(0, static_cast<int64_t>(labels.size()) - 1))]);
    h.AddEdge(static_cast<NodeId>(rng->UniformInt(0, node - 1)), node);
  }
  return h;
}

// Applies one random op to BOTH indexes (they own independent graph copies)
// and returns a short description for failure messages.
std::string ApplyRandomOp(DkIndex* a, DkIndex* b, Rng* rng) {
  switch (rng->UniformInt(0, 5)) {
    case 0:
    case 1: {  // AddEdge
      NodeId u = static_cast<NodeId>(
          rng->UniformInt(1, a->graph().NumNodes() - 1));
      NodeId v = static_cast<NodeId>(
          rng->UniformInt(1, a->graph().NumNodes() - 1));
      a->AddEdge(u, v);
      b->AddEdge(u, v);
      return "AddEdge";
    }
    case 2: {  // RemoveEdge (may be a no-op when absent — same on both)
      NodeId u = static_cast<NodeId>(
          rng->UniformInt(1, a->graph().NumNodes() - 1));
      NodeId v = static_cast<NodeId>(
          rng->UniformInt(1, a->graph().NumNodes() - 1));
      a->RemoveEdge(u, v);
      b->RemoveEdge(u, v);
      return "RemoveEdge";
    }
    case 3: {  // PromoteBatch
      LabelRequirements reqs = RandomReqs(a->graph(), rng, 2, 3);
      a->PromoteBatch(reqs);
      b->PromoteBatch(reqs);
      return "PromoteBatch";
    }
    case 4: {  // Demote
      LabelRequirements reqs = RandomReqs(a->graph(), rng, 2, 3);
      a->Demote(reqs);
      b->Demote(reqs);
      return "Demote";
    }
    default: {  // AddSubgraph
      DataGraph h = RandomSubgraph(a->graph(), rng);
      a->AddSubgraph(h);
      b->AddSubgraph(h);
      return "AddSubgraph";
    }
  }
}

void ExpectSameAnswers(const DkIndex& a, const DkIndex& b, Rng* rng,
                       int num_queries) {
  for (int q = 0; q < num_queries; ++q) {
    std::string text = testing_util::RandomChainQuery(
        a.graph(), static_cast<int>(rng->UniformInt(1, 3)), rng);
    PathExpression qa = testing_util::MustParse(text, a.graph().labels());
    PathExpression qb = testing_util::MustParse(text, b.graph().labels());
    EvalStats sa, sb;
    std::vector<NodeId> ra = EvaluateOnIndex(a.index(), qa, &sa);
    std::vector<NodeId> rb = EvaluateOnIndex(b.index(), qb, &sb);
    ASSERT_EQ(ra, rb) << "answers diverge for " << text;
    // Equal partitions must also cost the same to evaluate — EvalStats is
    // numbering-independent.
    ASSERT_EQ(sa.index_nodes_visited, sb.index_nodes_visited) << text;
    ASSERT_EQ(sa.data_nodes_visited, sb.data_nodes_visited) << text;
    ASSERT_EQ(sa.validated_candidates, sb.validated_candidates) << text;
    ASSERT_EQ(sa.uncertain_index_nodes, sb.uncertain_index_nodes) << text;
    ASSERT_EQ(sa.result_size, sb.result_size) << text;
  }
}

TEST(MaintenanceDiffTest, RandomStreamsMatchFullRebuildBitForBit) {
  Rng rng(811);
  for (int trial = 0; trial < 6; ++trial) {
    DataGraph g_inc = testing_util::RandomGraph(110, 5, 25, &rng);
    DataGraph g_full = g_inc;
    LabelRequirements initial = RandomReqs(g_inc, &rng, 3, 3);

    DkIndex inc = DkIndex::Build(&g_inc, initial);
    ASSERT_EQ(inc.maintenance_mode(), DkIndex::MaintenanceMode::kIncremental);
    DkIndex full = DkIndex::Build(&g_full, initial);
    full.set_maintenance_mode(DkIndex::MaintenanceMode::kFullRebuild);

    uint64_t last_epoch = inc.epoch();
    for (int step = 0; step < 30; ++step) {
      std::string op = ApplyRandomOp(&inc, &full, &rng);
      ASSERT_NO_FATAL_FAILURE(ExpectSameIndex(inc.index(), full.index()))
          << "trial " << trial << " step " << step << " op " << op;
      // Identical op sequences take identical epoch trajectories, and
      // epochs never move backwards (the result cache's safety invariant).
      ASSERT_EQ(inc.epoch(), full.epoch()) << op;
      ASSERT_GE(inc.epoch(), last_epoch) << op;
      last_epoch = inc.epoch();
      std::string error;
      ASSERT_TRUE(inc.index().ValidatePartition(&error)) << error;
      ASSERT_TRUE(inc.index().ValidateEdges(&error)) << error;
      ASSERT_TRUE(inc.index().ValidateDkConstraint(&error)) << error;
    }
    ExpectSameAnswers(inc, full, &rng, 6);
  }
}

TEST(MaintenanceDiffTest, DemoteAfterUpdatesMatchesFreshBuild) {
  // The incremental path's strongest claim: after arbitrary edge churn, a
  // Demote produces exactly DkIndex::Build(current graph, reqs) — not
  // merely a sound quotient of the scarred index.
  Rng rng(911);
  for (int trial = 0; trial < 6; ++trial) {
    DataGraph g = testing_util::RandomGraph(130, 4, 30, &rng);
    DkIndex dk = DkIndex::Build(&g, RandomReqs(g, &rng, 3, 4));
    for (int i = 0; i < 10; ++i) {
      NodeId u =
          static_cast<NodeId>(rng.UniformInt(1, g.NumNodes() - 1));
      NodeId v =
          static_cast<NodeId>(rng.UniformInt(1, g.NumNodes() - 1));
      if (rng.UniformInt(0, 2) == 0) {
        dk.RemoveEdge(u, v);
      } else {
        dk.AddEdge(u, v);
      }
    }
    LabelRequirements target = RandomReqs(g, &rng, 2, 3);
    dk.Demote(target);

    DataGraph g2 = g;
    DkIndex fresh = DkIndex::Build(&g2, target);
    fresh.mutable_index()->set_graph(&g);  // compare over the same graph
    ExpectSameIndex(dk.index(), fresh.index());
  }
}

TEST(MaintenanceDiffTest, XmarkStreamMatchesFullRebuild) {
  Rng rng(1013);
  XmarkOptions options;
  options.scale = 0.04;
  DataGraph g_inc = GenerateXmarkGraph(options).graph;
  DataGraph g_full = g_inc;
  LabelRequirements initial = RandomReqs(g_inc, &rng, 4, 3);

  DkIndex inc = DkIndex::Build(&g_inc, initial);
  DkIndex full = DkIndex::Build(&g_full, initial);
  full.set_maintenance_mode(DkIndex::MaintenanceMode::kFullRebuild);
  for (int step = 0; step < 12; ++step) {
    std::string op = ApplyRandomOp(&inc, &full, &rng);
    ASSERT_NO_FATAL_FAILURE(ExpectSameIndex(inc.index(), full.index()))
        << "step " << step << " op " << op;
  }
  ExpectSameAnswers(inc, full, &rng, 4);
}

TEST(MaintenanceDiffTest, NasaStreamMatchesFullRebuild) {
  Rng rng(1117);
  NasaOptions options;
  options.scale = 0.04;
  DataGraph g_inc = GenerateNasaGraph(options).graph;
  DataGraph g_full = g_inc;
  LabelRequirements initial = RandomReqs(g_inc, &rng, 4, 3);

  DkIndex inc = DkIndex::Build(&g_inc, initial);
  DkIndex full = DkIndex::Build(&g_full, initial);
  full.set_maintenance_mode(DkIndex::MaintenanceMode::kFullRebuild);
  for (int step = 0; step < 12; ++step) {
    std::string op = ApplyRandomOp(&inc, &full, &rng);
    ASSERT_NO_FATAL_FAILURE(ExpectSameIndex(inc.index(), full.index()))
        << "step " << step << " op " << op;
  }
  ExpectSameAnswers(inc, full, &rng, 4);
}

TEST(MaintenanceDiffTest, CoalescedBatchApplyMatchesSequentialApply) {
  // CoalesceSupersededRetunes marks retunes whose apply a later
  // shrink-retune makes unobservable. Applying the batch with the skips
  // must land on the same partition and similarities as applying every op.
  Rng rng(1213);
  for (int trial = 0; trial < 4; ++trial) {
    DataGraph g_a = testing_util::RandomGraph(90, 4, 20, &rng);
    DataGraph g_b = g_a;
    LabelRequirements initial = RandomReqs(g_a, &rng, 2, 3);
    DkIndex a = DkIndex::Build(&g_a, initial);
    DkIndex b = DkIndex::Build(&g_b, initial);

    std::vector<UpdateOp> batch;
    batch.push_back(UpdateOp::Retune(RandomReqs(g_a, &rng, 2, 4), false));
    batch.push_back(UpdateOp::AddEdge(
        static_cast<NodeId>(rng.UniformInt(1, g_a.NumNodes() - 1)),
        static_cast<NodeId>(rng.UniformInt(1, g_a.NumNodes() - 1))));
    batch.push_back(UpdateOp::Retune(RandomReqs(g_a, &rng, 2, 4), true));
    batch.push_back(UpdateOp::Retune(RandomReqs(g_a, &rng, 2, 3), true));

    std::vector<char> skip = CoalesceSupersededRetunes(a, batch);
    // The two leading retunes precede the final valid shrink-retune.
    EXPECT_TRUE(skip[0]);
    EXPECT_FALSE(skip[1]);  // not a retune
    EXPECT_TRUE(skip[2]);
    EXPECT_FALSE(skip[3]);

    for (size_t i = 0; i < batch.size(); ++i) {
      if (!skip[i]) {
        ASSERT_TRUE(ApplyUpdateOp(&a, batch[i]));
      }
      ASSERT_TRUE(ApplyUpdateOp(&b, batch[i]));
    }
    ExpectSameIndex(a.index(), b.index());
  }
}

TEST(MaintenanceDiffTest, ServerRetuneBurstStaysExact) {
  // End-to-end: a burst of retunes (coalescible when they land in one
  // writer batch) plus edge churn through the server must serve exactly
  // the answers of the sequentially maintained reference index.
  Rng rng(1319);
  DataGraph g = testing_util::RandomGraph(100, 4, 20, &rng);
  DataGraph g_ref = g;
  LabelRequirements initial = RandomReqs(g, &rng, 2, 3);
  DkIndex dk = DkIndex::Build(&g, initial);
  DkIndex ref = DkIndex::Build(&g_ref, initial);

  QueryServer server(dk);
  for (int wave = 0; wave < 4; ++wave) {
    LabelRequirements reqs = RandomReqs(g_ref, &rng, 2, 3);
    ASSERT_TRUE(server.SubmitRetune(reqs, /*shrink=*/true));
    ref.PromoteBatch(reqs);
    ref.Demote(reqs);
    NodeId u = static_cast<NodeId>(rng.UniformInt(1, g_ref.NumNodes() - 1));
    NodeId v = static_cast<NodeId>(rng.UniformInt(1, g_ref.NumNodes() - 1));
    ASSERT_TRUE(server.SubmitAddEdge(u, v));
    ref.AddEdge(u, v);
  }
  server.Flush();

  QueryServer::Stats stats = server.stats();
  EXPECT_EQ(stats.ops_applied, 8);
  EXPECT_EQ(stats.ops_invalid, 0);
  EXPECT_GE(stats.ops_coalesced, 0);
  EXPECT_LE(stats.ops_coalesced, 3);  // the last retune always applies

  auto snap = server.snapshot();
  for (int q = 0; q < 6; ++q) {
    std::string text = testing_util::RandomChainQuery(
        g_ref, static_cast<int>(rng.UniformInt(1, 3)), &rng);
    auto served = server.EvaluateOn(
        *snap, text);
    ASSERT_TRUE(served.has_value()) << text;
    EXPECT_EQ(*served,
              EvaluateOnIndex(ref.index(), testing_util::MustParse(
                                               text, g_ref.labels())))
        << text;
  }
}

}  // namespace
}  // namespace dki
