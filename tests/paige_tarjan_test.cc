#include "index/paige_tarjan.h"

#include <gtest/gtest.h>

#include <set>
#include <unordered_map>

#include "common/random.h"
#include "datagen/xmark_generator.h"
#include "tests/test_util.h"

namespace dki {
namespace {

TEST(PaigeTarjanTest, TrivialGraphs) {
  DataGraph g;  // just ROOT
  Partition p = CoarsestStablePartition(g);
  EXPECT_EQ(p.num_blocks, 1);

  NodeId a = g.AddNode("a");
  NodeId b = g.AddNode("a");
  g.AddEdge(g.root(), a);
  g.AddEdge(g.root(), b);
  p = CoarsestStablePartition(g);
  EXPECT_EQ(p.num_blocks, 2);  // ROOT block and the bisimilar {a, a} block
  EXPECT_EQ(p.block_of[static_cast<size_t>(a)],
            p.block_of[static_cast<size_t>(b)]);
}

TEST(PaigeTarjanTest, DistinguishesByParentLabel) {
  // The paper's movie example: a movie with an actor parent is not bisimilar
  // to a movie without one.
  DataGraph g = testing_util::BuildMovieGraph();
  Partition p = CoarsestStablePartition(g);
  LabelId movie = g.labels().Find("movie");
  LabelId actor = g.labels().Find("actor");
  std::set<int32_t> movie_blocks;
  for (NodeId n : g.NodesWithLabel(movie)) {
    movie_blocks.insert(p.block_of[static_cast<size_t>(n)]);
  }
  EXPECT_GT(movie_blocks.size(), 1u);
  // Within a block, the "has an actor parent" property must be uniform.
  std::unordered_map<int32_t, bool> has_actor_parent;
  for (NodeId n : g.NodesWithLabel(movie)) {
    bool has = false;
    for (NodeId parent : g.parents(n)) has |= g.label(parent) == actor;
    auto [it, inserted] =
        has_actor_parent.emplace(p.block_of[static_cast<size_t>(n)], has);
    EXPECT_EQ(it->second, has);
  }
}

TEST(PaigeTarjanTest, AgreesWithIteratedRefinementOnRandomGraphs) {
  Rng rng(2024);
  for (int trial = 0; trial < 20; ++trial) {
    DataGraph g = testing_util::RandomGraph(
        60 + trial * 10, 3 + trial % 4, 10 + trial * 3, &rng);
    Partition pt = CoarsestStablePartition(g);
    Partition fix = ComputeFullBisimulation(g);
    EXPECT_EQ(pt.num_blocks, fix.num_blocks) << "trial " << trial;
    EXPECT_TRUE(SamePartition(pt, fix)) << "trial " << trial;
  }
}

TEST(PaigeTarjanTest, AgreesOnCyclicGraph) {
  DataGraph g;
  NodeId a = g.AddNode("a");
  NodeId b = g.AddNode("b");
  NodeId c = g.AddNode("a");
  g.AddEdge(g.root(), a);
  g.AddEdge(a, b);
  g.AddEdge(b, c);
  g.AddEdge(c, a);  // cycle a -> b -> a' -> a
  Partition pt = CoarsestStablePartition(g);
  Partition fix = ComputeFullBisimulation(g);
  EXPECT_TRUE(SamePartition(pt, fix));
}

TEST(PaigeTarjanTest, AgreesOnXmarkGraph) {
  XmarkOptions options;
  options.scale = 0.1;
  DataGraph g = GenerateXmarkGraph(options).graph;
  Partition pt = CoarsestStablePartition(g);
  Partition fix = ComputeFullBisimulation(g);
  EXPECT_TRUE(SamePartition(pt, fix));
  EXPECT_LT(pt.num_blocks, g.NumNodes());  // a real summary, not identity
}

TEST(PaigeTarjanTest, StabilityHolds) {
  Rng rng(31);
  DataGraph g = testing_util::RandomGraph(80, 4, 20, &rng);
  Partition p = CoarsestStablePartition(g);
  // For every pair of blocks (A, B): B ⊆ Succ(A) or B ∩ Succ(A) = ∅.
  std::vector<std::vector<NodeId>> members(
      static_cast<size_t>(p.num_blocks));
  for (NodeId n = 0; n < g.NumNodes(); ++n) {
    members[static_cast<size_t>(p.block_of[static_cast<size_t>(n)])]
        .push_back(n);
  }
  for (int32_t a = 0; a < p.num_blocks; ++a) {
    std::set<NodeId> succ;
    for (NodeId u : members[static_cast<size_t>(a)]) {
      for (NodeId v : g.children(u)) succ.insert(v);
    }
    for (int32_t b = 0; b < p.num_blocks; ++b) {
      size_t inside = 0;
      for (NodeId v : members[static_cast<size_t>(b)]) {
        inside += succ.count(v);
      }
      EXPECT_TRUE(inside == 0 || inside == members[static_cast<size_t>(b)].size())
          << "block " << b << " unstable w.r.t. block " << a;
    }
  }
}

}  // namespace
}  // namespace dki
