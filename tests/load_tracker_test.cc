#include "query/load_tracker.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/random.h"
#include "query/evaluator.h"
#include "tests/test_util.h"

namespace dki {
namespace {

class LoadTrackerTest : public ::testing::Test {
 protected:
  LoadTrackerTest() {
    a_ = labels_.Intern("a");
    b_ = labels_.Intern("b");
    c_ = labels_.Intern("c");
  }

  void Record(QueryLoadTracker* tracker, const std::string& text,
              int64_t count) {
    tracker->Record(testing_util::MustParse(text, labels_), labels_, count);
  }

  LabelTable labels_;
  LabelId a_, b_, c_;
};

TEST_F(LoadTrackerTest, FullCoverageMatchesPaperRule) {
  QueryLoadTracker tracker;
  Record(&tracker, "a.b.c", 1);
  Record(&tracker, "b.c", 99);
  LabelRequirements reqs = tracker.MineRequirements(1.0);
  EXPECT_EQ(reqs.at(c_), 2);  // deepest query wins at coverage 1.0
  EXPECT_EQ(tracker.total_queries(), 100);
  EXPECT_EQ(tracker.label_traffic(c_), 100);
}

TEST_F(LoadTrackerTest, PartialCoverageIgnoresRareDeepQueries) {
  QueryLoadTracker tracker;
  Record(&tracker, "a.b.c", 1);   // 1% of traffic needs k=2
  Record(&tracker, "b.c", 99);    // 99% needs k=1
  LabelRequirements reqs = tracker.MineRequirements(0.95);
  EXPECT_EQ(reqs.at(c_), 1);  // the rare deep query validates instead
}

TEST_F(LoadTrackerTest, ZeroRequirementLabelsOmitted) {
  QueryLoadTracker tracker;
  Record(&tracker, "c", 50);  // single label: no similarity needed
  LabelRequirements reqs = tracker.MineRequirements(1.0);
  EXPECT_TRUE(reqs.empty());
  EXPECT_EQ(tracker.label_traffic(c_), 50);  // still counted as traffic
}

TEST_F(LoadTrackerTest, TrafficMixSelectsPerLabelCoverage) {
  QueryLoadTracker tracker;
  Record(&tracker, "b.c", 60);
  Record(&tracker, "a.b.c", 40);
  EXPECT_EQ(tracker.MineRequirements(0.6).at(c_), 1);
  EXPECT_EQ(tracker.MineRequirements(0.61).at(c_), 2);
}

TEST_F(LoadTrackerTest, DecayFadesOldPatterns) {
  QueryLoadTracker tracker;
  Record(&tracker, "a.b.c", 4);
  EXPECT_EQ(tracker.MineRequirements(1.0).at(c_), 2);
  tracker.Decay(0.1);  // 4 * 0.1 < 1: pattern evicted
  EXPECT_TRUE(tracker.MineRequirements(1.0).empty());
  EXPECT_EQ(tracker.total_queries(), 0);
}

TEST_F(LoadTrackerTest, DecayKeepsHotPatterns) {
  QueryLoadTracker tracker;
  Record(&tracker, "a.b.c", 1000);
  tracker.Decay(0.5);
  EXPECT_EQ(tracker.MineRequirements(1.0).at(c_), 2);
  EXPECT_EQ(tracker.total_queries(), 500);
}

TEST_F(LoadTrackerTest, DecayRecomputesTotalFromSurvivors) {
  QueryLoadTracker tracker;
  Record(&tracker, "a.b.c", 4);     // c's k=2 bucket
  Record(&tracker, "b.c", 1000);    // c's k=1 bucket
  Record(&tracker, "a.b", 300);     // b's k=1 bucket
  EXPECT_EQ(tracker.total_queries(), 1304);

  // Nothing evicted: the total just scales.
  tracker.Decay(0.5);
  EXPECT_EQ(tracker.total_queries(), 652);
  EXPECT_EQ(tracker.total_queries(),
            tracker.label_traffic(b_) + tracker.label_traffic(c_));

  // The k=2 bucket decays to 0.8 and is evicted; the total must drop to the
  // surviving weight (500*0.4 + 150*0.4 = 260), not the scaled 260.8.
  tracker.Decay(0.4);
  EXPECT_EQ(tracker.total_queries(), 260);
  EXPECT_EQ(tracker.total_queries(),
            tracker.label_traffic(b_) + tracker.label_traffic(c_));
  EXPECT_EQ(tracker.MineRequirements(1.0).at(c_), 1);  // deep pattern gone

  // Repeated decays keep the invariant total == sum of surviving buckets
  // (factor 0.5 keeps every bucket integral, so the rounded per-label sums
  // are exact).
  for (int i = 0; i < 2; ++i) {
    tracker.Decay(0.5);
    EXPECT_EQ(tracker.total_queries(),
              tracker.label_traffic(b_) + tracker.label_traffic(c_));
  }
  tracker.Decay(0.001);  // everything evicted
  EXPECT_EQ(tracker.total_queries(), 0);
  EXPECT_EQ(tracker.label_traffic(b_), 0);
  EXPECT_EQ(tracker.label_traffic(c_), 0);
}

TEST_F(LoadTrackerTest, MultiTargetLoadDoesNotJumpAcrossDecay) {
  // A regex query feeding two target buckets used to be counted once by
  // Record but twice by Decay's recompute, so a no-op Decay(1.0) jumped
  // total_queries(). The total now derives from the buckets, so a factor-1
  // decay of a constant load is invisible.
  QueryLoadTracker tracker;
  Record(&tracker, "a.a.(b|c)", 10);
  const int64_t before = tracker.total_queries();
  EXPECT_EQ(before, tracker.label_traffic(b_) + tracker.label_traffic(c_));
  for (int i = 0; i < 5; ++i) {
    tracker.Decay(1.0);
    EXPECT_EQ(tracker.total_queries(), before);
  }
}

TEST_F(LoadTrackerTest, PropertyTotalAlwaysEqualsSurvivingBucketSum) {
  // Differential property test against a shadow model of the buckets: after
  // ANY interleaving of Record and Decay, total_queries() must equal the
  // rounded sum of surviving bucket weights, and each label_traffic() the
  // rounded sum of that label's buckets.
  QueryLoadTracker tracker;
  std::map<std::pair<LabelId, int>, double> shadow;
  LoadAnalyzerOptions analyzer_options;

  const std::vector<std::string> pool = {"a.b.c", "b.c",        "a.b",
                                         "c",     "a.a.(b|c)",  "a?.b.c",
                                         "a.b*",  "(a|b).c"};
  Rng rng(20260807);
  auto check = [&] {
    double total = 0.0;
    std::map<LabelId, double> by_label;
    for (const auto& [key, weight] : shadow) {
      total += weight;
      by_label[key.first] += weight;
    }
    ASSERT_EQ(tracker.total_queries(),
              static_cast<int64_t>(std::llround(total)));
    for (LabelId l : {a_, b_, c_}) {
      ASSERT_EQ(tracker.label_traffic(l),
                static_cast<int64_t>(std::llround(by_label[l])));
    }
  };

  for (int step = 0; step < 400; ++step) {
    if (rng.Next() % 4 != 0) {
      const std::string& text = pool[rng.Next() % pool.size()];
      int64_t count = 1 + static_cast<int64_t>(rng.Next() % 50);
      PathExpression q = testing_util::MustParse(text, labels_);
      tracker.Record(q, labels_, count);
      // Mirror Record's bucket semantics.
      auto targets = QueryRequirementTargets(q, labels_, analyzer_options);
      if (targets.empty()) {
        if (q.is_chain() && !q.chain_labels().empty() &&
            q.chain_labels().back() >= 0) {
          shadow[{q.chain_labels().back(), 0}] += static_cast<double>(count);
        }
      } else {
        for (const auto& [label, k] : targets) {
          shadow[{label, k}] += static_cast<double>(count);
        }
      }
    } else {
      // Fractional factors exercise the llround path; occasional 1.0 is the
      // constant-load case.
      double factor = 0.3 + 0.1 * static_cast<double>(rng.Next() % 8);
      tracker.Decay(factor);
      for (auto it = shadow.begin(); it != shadow.end();) {
        it->second *= factor;
        it = it->second < 1.0 ? shadow.erase(it) : std::next(it);
      }
    }
    check();
  }
  // Drain: repeated decay of whatever is left must converge to 0 on both
  // sides without ever disagreeing.
  for (int i = 0; i < 30; ++i) {
    tracker.Decay(0.5);
    for (auto it = shadow.begin(); it != shadow.end();) {
      it->second *= 0.5;
      it = it->second < 1.0 ? shadow.erase(it) : std::next(it);
    }
    check();
  }
  EXPECT_EQ(tracker.total_queries(), 0);
}

TEST_F(LoadTrackerTest, RegexQueriesAttributeToEndLabels) {
  QueryLoadTracker tracker;
  Record(&tracker, "a.a.(b|c)", 10);
  LabelRequirements reqs = tracker.MineRequirements(1.0);
  EXPECT_EQ(reqs.at(b_), 2);
  EXPECT_EQ(reqs.at(c_), 2);
}

TEST(LoadTrackerAdviseTest, PlansPromotionsAndDemotions) {
  Rng rng(401);
  DataGraph g = testing_util::RandomGraph(120, 4, 20, &rng);
  // Build an index for a shallow load, then record a deeper one.
  std::string shallow = testing_util::RandomChainQuery(g, 2, &rng);
  LabelRequirements initial =
      MineRequirementsFromText({shallow}, g.labels(), nullptr);
  DkIndex dk = DkIndex::Build(&g, initial);

  QueryLoadTracker tracker;
  std::string deep;
  for (int tries = 0; tries < 50 && deep.empty(); ++tries) {
    std::string candidate = testing_util::RandomChainQuery(g, 4, &rng);
    PathExpression q = testing_util::MustParse(candidate, g.labels());
    if (q.chain_labels().size() == 4) deep = candidate;
  }
  ASSERT_FALSE(deep.empty());
  tracker.Record(testing_util::MustParse(deep, g.labels()), g.labels(), 10);

  auto plan = tracker.Advise(dk, 1.0);
  ASSERT_FALSE(plan.target.empty());
  // The deep query's end label needs k=3, above anything the shallow index
  // has, so it must appear in the promotions.
  PathExpression q = testing_util::MustParse(deep, g.labels());
  LabelId end = q.chain_labels().back();
  ASSERT_TRUE(plan.promotions.count(end) > 0);
  EXPECT_EQ(plan.promotions.at(end), 3);

  // Applying the plan makes the deep query sound without validation.
  dk.PromoteBatch(plan.promotions);
  EvalStats stats;
  EXPECT_EQ(EvaluateOnIndex(dk.index(), q, &stats),
            EvaluateOnDataGraph(g, q));
  EXPECT_EQ(stats.uncertain_index_nodes, 0);
}

TEST(LoadTrackerAdviseTest, DemotableListsOverRefinedLabels) {
  Rng rng(409);
  DataGraph g = testing_util::RandomGraph(100, 4, 15, &rng);
  std::string query;
  for (int tries = 0; tries < 50 && query.empty(); ++tries) {
    std::string candidate = testing_util::RandomChainQuery(g, 3, &rng);
    PathExpression q = testing_util::MustParse(candidate, g.labels());
    if (q.chain_labels().size() == 3) query = candidate;
  }
  ASSERT_FALSE(query.empty());
  LabelRequirements reqs =
      MineRequirementsFromText({query}, g.labels(), nullptr);
  DkIndex dk = DkIndex::Build(&g, reqs);

  // Tracker sees nothing: everything refined is demotable.
  QueryLoadTracker tracker;
  auto plan = tracker.Advise(dk, 1.0);
  EXPECT_TRUE(plan.promotions.empty());
  EXPECT_FALSE(plan.demotable.empty());
  dk.Demote(plan.target);  // empty target: back to the label split
  for (IndexNodeId i = 0; i < dk.index().NumIndexNodes(); ++i) {
    EXPECT_EQ(dk.index().k(i), 0);
  }
}

}  // namespace
}  // namespace dki
