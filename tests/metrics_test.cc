#include "common/metrics.h"

#include <gtest/gtest.h>

#include <sstream>
#include <thread>
#include <vector>

#include "index/dk_index.h"
#include "query/evaluator.h"
#include "tests/test_util.h"

namespace dki {
namespace {

TEST(MetricsTest, CounterRegistrationIsStableAndNamed) {
  Counter& c = MetricsRegistry::Global().GetCounter("test.metrics.stable");
  Counter& again = MetricsRegistry::Global().GetCounter("test.metrics.stable");
  EXPECT_EQ(&c, &again);  // one object per name, forever
  c.Reset();
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.value(), 42);
  EXPECT_EQ(c.name(), "test.metrics.stable");
}

TEST(MetricsTest, ConcurrentIncrementsAreLossless) {
  Counter& c = MetricsRegistry::Global().GetCounter("test.metrics.concurrent");
  c.Reset();
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.Increment();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), static_cast<int64_t>(kThreads) * kPerThread);
}

TEST(MetricsTest, TimerAccumulates) {
  TimerMetric& t = MetricsRegistry::Global().GetTimer("test.metrics.timer");
  t.Reset();
  { ScopedTimer scope(&t); }
  { ScopedTimer scope(&t); }
  EXPECT_EQ(t.count(), 2);
  EXPECT_GE(t.total_nanos(), 0);
}

TEST(MetricsTest, SnapshotContainsRegisteredMetricsSorted) {
  MetricsRegistry::Global().GetCounter("test.metrics.snap_b").Reset();
  MetricsRegistry::Global().GetCounter("test.metrics.snap_a").Increment(7);
  auto snapshot = MetricsRegistry::Global().Snapshot();
  ASSERT_GE(snapshot.size(), 2u);
  for (size_t i = 1; i < snapshot.size(); ++i) {
    EXPECT_LE(snapshot[i - 1].name, snapshot[i].name);
  }
  bool found = false;
  for (const MetricSample& s : snapshot) {
    if (s.name == "test.metrics.snap_a") {
      found = true;
      EXPECT_EQ(s.value, 7);
      EXPECT_EQ(s.count, -1);  // counters carry no invocation count
    }
  }
  EXPECT_TRUE(found);
}

TEST(MetricsTest, ServingPathIsInstrumented) {
  MetricsRegistry::Global().ResetAll();
  DataGraph g = testing_util::BuildMovieGraph();
  LabelRequirements reqs;
  reqs[g.labels().Find("title")] = 2;
  DkIndex dk = DkIndex::Build(&g, reqs);
  PathExpression q =
      testing_util::MustParse("director.movie.title", g.labels());
  EvalStats stats;
  auto result = EvaluateOnIndex(dk.index(), q, &stats);

  auto& registry = MetricsRegistry::Global();
  EXPECT_EQ(registry.GetCounter("index.dk.build.calls").value(), 1);
  EXPECT_EQ(registry.GetCounter("eval.index.calls").value(), 1);
  EXPECT_EQ(registry.GetCounter("eval.index.index_nodes_visited").value(),
            stats.index_nodes_visited);
  EXPECT_EQ(registry.GetCounter("eval.index.results").value(),
            static_cast<int64_t>(result.size()));

  dk.AddEdge(1, 2);
  EXPECT_EQ(registry.GetCounter("index.dk.add_edge.calls").value(), 1);

  std::ostringstream dump;
  registry.Dump(&dump);
  EXPECT_NE(dump.str().find("eval.index.calls 1"), std::string::npos);
}

}  // namespace
}  // namespace dki
