#include "common/metrics.h"

#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <thread>
#include <vector>

#include "index/dk_index.h"
#include "query/evaluator.h"
#include "tests/test_util.h"

namespace dki {
namespace {

TEST(MetricsTest, CounterRegistrationIsStableAndNamed) {
  Counter& c = MetricsRegistry::Global().GetCounter("test.metrics.stable");
  Counter& again = MetricsRegistry::Global().GetCounter("test.metrics.stable");
  EXPECT_EQ(&c, &again);  // one object per name, forever
  c.Reset();
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.value(), 42);
  EXPECT_EQ(c.name(), "test.metrics.stable");
}

TEST(MetricsTest, ConcurrentIncrementsAreLossless) {
  Counter& c = MetricsRegistry::Global().GetCounter("test.metrics.concurrent");
  c.Reset();
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.Increment();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), static_cast<int64_t>(kThreads) * kPerThread);
}

TEST(MetricsTest, TimerAccumulates) {
  TimerMetric& t = MetricsRegistry::Global().GetTimer("test.metrics.timer");
  t.Reset();
  { ScopedTimer scope(&t); }
  { ScopedTimer scope(&t); }
  EXPECT_EQ(t.count(), 2);
  EXPECT_GE(t.total_nanos(), 0);
}

TEST(MetricsTest, SnapshotContainsRegisteredMetricsSorted) {
  MetricsRegistry::Global().GetCounter("test.metrics.snap_b").Reset();
  MetricsRegistry::Global().GetCounter("test.metrics.snap_a").Increment(7);
  auto snapshot = MetricsRegistry::Global().Snapshot();
  ASSERT_GE(snapshot.size(), 2u);
  for (size_t i = 1; i < snapshot.size(); ++i) {
    EXPECT_LE(snapshot[i - 1].name, snapshot[i].name);
  }
  bool found = false;
  for (const MetricSample& s : snapshot) {
    if (s.name == "test.metrics.snap_a") {
      found = true;
      EXPECT_EQ(s.value, 7);
      EXPECT_EQ(s.count, -1);  // counters carry no invocation count
    }
  }
  EXPECT_TRUE(found);
}

TEST(MetricsTest, TimerReportsMean) {
  TimerMetric t("test.metrics.mean");
  EXPECT_EQ(t.avg_nanos(), 0);  // no division by zero before first record
  t.RecordNanos(100);
  t.RecordNanos(300);
  EXPECT_EQ(t.avg_nanos(), 200);
}

// ---------------------------------------------------------------------------
// Histogram: bucket geometry, percentile accuracy, concurrency.
// ---------------------------------------------------------------------------

TEST(HistogramTest, BucketGeometryIsContiguous) {
  // Every value maps into a bucket whose [lower, lower + width) range
  // contains it, and bucket boundaries tile the axis with no gaps.
  for (uint64_t v : {0ull, 1ull, 3ull, 4ull, 5ull, 7ull, 8ull, 100ull,
                     1023ull, 1024ull, 1048576ull, 123456789ull}) {
    const size_t idx = Histogram::BucketIndex(v);
    const int64_t lo = Histogram::BucketLowerBound(idx);
    const int64_t width = Histogram::BucketWidth(idx);
    EXPECT_GE(static_cast<int64_t>(v), lo) << v;
    EXPECT_LT(static_cast<int64_t>(v), lo + width) << v;
  }
  for (size_t idx = 1; idx < 64; ++idx) {
    EXPECT_EQ(Histogram::BucketLowerBound(idx),
              Histogram::BucketLowerBound(idx - 1) +
                  Histogram::BucketWidth(idx - 1));
  }
}

TEST(HistogramTest, ExactBelowSubBucketCount) {
  Histogram h("test.hist.exact");
  for (int i = 0; i < 100; ++i) h.Record(i % Histogram::kSubBuckets);
  HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, 100);
  for (size_t b = 0; b < static_cast<size_t>(Histogram::kSubBuckets); ++b) {
    EXPECT_EQ(snap.buckets[b], 25);
  }
}

TEST(HistogramTest, PercentilesWithinBucketErrorBound) {
  // Uniform values 1..10000: every reported quantile must be within one
  // bucket width (<= 25%) of the true order statistic.
  Histogram h("test.hist.quantiles");
  const int kN = 10000;
  for (int v = 1; v <= kN; ++v) h.Record(v);
  HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, kN);
  EXPECT_EQ(snap.max, kN);
  for (double q : {0.10, 0.50, 0.95, 0.99}) {
    const double truth = q * kN;
    const double got = snap.ValueAtQuantile(q);
    EXPECT_GE(got, truth * 0.75) << q;
    EXPECT_LE(got, truth * 1.25) << q;
  }
  EXPECT_LE(snap.ValueAtQuantile(1.0), static_cast<double>(snap.max));
  EXPECT_NEAR(snap.mean(), (kN + 1) / 2.0, 1.0);
}

TEST(HistogramTest, QuantilesAreMonotoneAndClampedByMax) {
  Histogram h("test.hist.monotone");
  h.Record(5);
  h.Record(1000);
  h.Record(7);
  HistogramSnapshot snap = h.snapshot();
  double prev = 0.0;
  for (double q = 0.0; q <= 1.0; q += 0.05) {
    const double v = snap.ValueAtQuantile(q);
    EXPECT_GE(v, prev);
    EXPECT_LE(v, static_cast<double>(snap.max));
    prev = v;
  }
}

TEST(HistogramTest, EmptyAndNegativeInputsAreSafe) {
  Histogram h("test.hist.edge");
  EXPECT_EQ(h.snapshot().ValueAtQuantile(0.5), 0.0);
  h.Record(-17);  // clamped to 0, not UB
  HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, 1);
  EXPECT_EQ(snap.buckets[0], 1);
}

TEST(HistogramTest, ConcurrentRecordsAreLossless) {
  Histogram& h =
      MetricsRegistry::Global().GetHistogram("test.hist.concurrent");
  h.Reset();
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) h.Record(t * 1000 + i);
    });
  }
  for (auto& th : threads) th.join();
  HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, static_cast<int64_t>(kThreads) * kPerThread);
  EXPECT_EQ(snap.max, (kThreads - 1) * 1000 + kPerThread - 1);
}

TEST(HistogramTest, SnapshotMaxCoversCountedObservationsUnderRaces) {
  // Record() bumps the bucket and the max in two separate relaxed atomic
  // ops; a snapshot landing between them used to report count > 0 with a
  // stale max (even 0), and ValueAtQuantile clamps EVERY quantile to max —
  // so a freshly loaded histogram read p50 == p99 == 0. The snapshot now
  // reconstructs a covering max from the buckets. Hammer the interleaving:
  // a writer recording a constant value, a reader snapshotting in a loop.
  Histogram& h =
      MetricsRegistry::Global().GetHistogram("test.hist.snapshot_race");
  h.Reset();
  constexpr int64_t kValue = 4096;  // exact bucket lower bound
  std::atomic<bool> stop{false};
  std::thread writer([&h, &stop] {
    while (!stop.load(std::memory_order_relaxed)) h.Record(kValue);
  });
  for (int i = 0; i < 50000; ++i) {
    HistogramSnapshot snap = h.snapshot();
    if (snap.count == 0) continue;
    // The invariant the fix restores: the reported max covers every counted
    // observation (>= the highest nonzero bucket's lower bound), so
    // quantiles can never clamp below the data.
    ASSERT_GE(snap.max, kValue) << "stale max with count=" << snap.count;
    ASSERT_GE(snap.ValueAtQuantile(0.99), static_cast<double>(kValue));
  }
  stop.store(true, std::memory_order_relaxed);
  writer.join();
}

TEST(HistogramTest, SnapshotMaxStillExactWhenQuiescent) {
  Histogram& h =
      MetricsRegistry::Global().GetHistogram("test.hist.snapshot_exact");
  h.Reset();
  h.Record(12345);
  h.Record(7);
  HistogramSnapshot snap = h.snapshot();
  // With no concurrent writer the tracked max is already covering, and the
  // clamp must not inflate it past the true maximum.
  EXPECT_EQ(snap.max, 12345);
}

TEST(HistogramTest, RegistryRegistrationAndDump) {
  Histogram& h = MetricsRegistry::Global().GetHistogram("test.hist.dump");
  Histogram& again =
      MetricsRegistry::Global().GetHistogram("test.hist.dump");
  EXPECT_EQ(&h, &again);
  h.Reset();
  h.Record(1000000);  // 1ms
  auto samples = MetricsRegistry::Global().SnapshotHistograms();
  bool found = false;
  for (const HistogramSample& s : samples) {
    if (s.name == "test.hist.dump") {
      found = true;
      EXPECT_EQ(s.snapshot.count, 1);
    }
  }
  EXPECT_TRUE(found);
  std::ostringstream dump;
  MetricsRegistry::Global().Dump(&dump);
  EXPECT_NE(dump.str().find("test.hist.dump"), std::string::npos);
  EXPECT_NE(dump.str().find("p99"), std::string::npos);
}

TEST(MetricsTest, ServingPathIsInstrumented) {
  MetricsRegistry::Global().ResetAll();
  DataGraph g = testing_util::BuildMovieGraph();
  LabelRequirements reqs;
  reqs[g.labels().Find("title")] = 2;
  DkIndex dk = DkIndex::Build(&g, reqs);
  PathExpression q =
      testing_util::MustParse("director.movie.title", g.labels());
  EvalStats stats;
  auto result = EvaluateOnIndex(dk.index(), q, &stats);

  auto& registry = MetricsRegistry::Global();
  EXPECT_EQ(registry.GetCounter("index.dk.build.calls").value(), 1);
  EXPECT_EQ(registry.GetCounter("eval.index.calls").value(), 1);
  EXPECT_EQ(registry.GetCounter("eval.index.index_nodes_visited").value(),
            stats.index_nodes_visited);
  EXPECT_EQ(registry.GetCounter("eval.index.results").value(),
            static_cast<int64_t>(result.size()));

  dk.AddEdge(1, 2);
  EXPECT_EQ(registry.GetCounter("index.dk.add_edge.calls").value(), 1);

  std::ostringstream dump;
  registry.Dump(&dump);
  EXPECT_NE(dump.str().find("eval.index.calls 1"), std::string::npos);
}

}  // namespace
}  // namespace dki
