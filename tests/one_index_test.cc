#include "index/one_index.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "index/partition.h"
#include "query/evaluator.h"
#include "tests/test_util.h"

namespace dki {
namespace {

TEST(OneIndexTest, BothAlgorithmsAgree) {
  Rng rng(17);
  for (int trial = 0; trial < 5; ++trial) {
    DataGraph g = testing_util::RandomGraph(100, 4, 20, &rng);
    IndexGraph a = OneIndex::Build(&g, OneIndex::Algorithm::kSplitterQueue);
    IndexGraph b =
        OneIndex::Build(&g, OneIndex::Algorithm::kIteratedRefinement);
    EXPECT_EQ(a.NumIndexNodes(), b.NumIndexNodes());
    for (NodeId u = 0; u < g.NumNodes(); ++u) {
      for (NodeId v = u + 1; v < g.NumNodes(); ++v) {
        EXPECT_EQ(a.index_of(u) == a.index_of(v),
                  b.index_of(u) == b.index_of(v));
      }
    }
  }
}

TEST(OneIndexTest, InfiniteLocalSimilarity) {
  DataGraph g = testing_util::BuildMovieGraph();
  IndexGraph index = OneIndex::Build(&g);
  for (IndexNodeId i = 0; i < index.NumIndexNodes(); ++i) {
    EXPECT_EQ(index.k(i), IndexGraph::kInfiniteSimilarity);
  }
  std::string error;
  EXPECT_TRUE(index.ValidatePartition(&error)) << error;
  EXPECT_TRUE(index.ValidateEdges(&error)) << error;
  EXPECT_TRUE(index.ValidateDkConstraint(&error)) << error;
}

TEST(OneIndexTest, SoundAndSafeForAnyQuery) {
  // The 1-index answers any path expression exactly, with no validation.
  Rng rng(23);
  DataGraph g = testing_util::RandomGraph(150, 5, 30, &rng);
  IndexGraph index = OneIndex::Build(&g);
  for (int i = 0; i < 20; ++i) {
    int len = static_cast<int>(rng.UniformInt(1, 5));
    std::string text = testing_util::RandomChainQuery(g, len, &rng);
    PathExpression q = testing_util::MustParse(text, g.labels());
    EvalStats truth_stats, index_stats;
    auto truth = EvaluateOnDataGraph(g, q, &truth_stats);
    auto result = EvaluateOnIndex(index, q, &index_stats);
    EXPECT_EQ(result, truth) << text;
    EXPECT_EQ(index_stats.data_nodes_visited, 0) << text;
    EXPECT_EQ(index_stats.uncertain_index_nodes, 0) << text;
  }
}

TEST(OneIndexTest, NeverLargerThanDataGraph) {
  Rng rng(29);
  DataGraph g = testing_util::RandomGraph(200, 3, 50, &rng);
  IndexGraph index = OneIndex::Build(&g);
  EXPECT_LE(index.NumIndexNodes(), g.NumNodes());
}

}  // namespace
}  // namespace dki
