#include "serve/query_server.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/random.h"
#include "index/dk_index.h"
#include "query/evaluator.h"
#include "query/load_tracker.h"
#include "query/parse_cache.h"
#include "serve/snapshot.h"
#include "serve/update_queue.h"
#include "serve/wal.h"
#include "tests/test_util.h"

namespace dki {
namespace {

// ---------------------------------------------------------------------------
// UpdateQueue: ordering, batching, backpressure, shutdown.
// ---------------------------------------------------------------------------

TEST(UpdateQueueTest, FifoOrderAndBatchBound) {
  UpdateQueue q(16, UpdateQueue::FullPolicy::kBlock);
  for (NodeId i = 0; i < 5; ++i) {
    ASSERT_EQ(q.Push(UpdateOp::AddEdge(i, i + 1)),
              UpdateQueue::PushResult::kOk);
  }
  EXPECT_EQ(q.size(), 5u);

  std::vector<UpdateOp> batch;
  ASSERT_TRUE(q.PopBatch(3, &batch));
  ASSERT_EQ(batch.size(), 3u);
  for (NodeId i = 0; i < 3; ++i) EXPECT_EQ(batch[static_cast<size_t>(i)].u, i);

  ASSERT_TRUE(q.PopBatch(100, &batch));
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch[0].u, 3);
  EXPECT_EQ(batch[1].u, 4);
}

TEST(UpdateQueueTest, RejectPolicyWhenFull) {
  UpdateQueue q(2, UpdateQueue::FullPolicy::kReject);
  EXPECT_EQ(q.Push(UpdateOp::AddEdge(1, 2)), UpdateQueue::PushResult::kOk);
  EXPECT_EQ(q.Push(UpdateOp::AddEdge(2, 3)), UpdateQueue::PushResult::kOk);
  // Full: rejected (retryably), not lost.
  EXPECT_EQ(q.Push(UpdateOp::AddEdge(3, 4)), UpdateQueue::PushResult::kFull);
  std::vector<UpdateOp> batch;
  ASSERT_TRUE(q.PopBatch(10, &batch));
  EXPECT_EQ(batch.size(), 2u);
  // Space freed: the retry succeeds.
  EXPECT_EQ(q.Push(UpdateOp::AddEdge(3, 4)), UpdateQueue::PushResult::kOk);
}

TEST(UpdateQueueTest, BlockPolicyWaitsForConsumer) {
  UpdateQueue q(1, UpdateQueue::FullPolicy::kBlock);
  constexpr int kOps = 32;
  std::thread consumer([&] {
    std::vector<UpdateOp> batch;
    int seen = 0;
    while (seen < kOps && q.PopBatch(4, &batch)) {
      for (const UpdateOp& op : batch) {
        EXPECT_EQ(op.u, seen);  // FIFO survives the blocking producer
        ++seen;
      }
    }
    EXPECT_EQ(seen, kOps);
  });
  for (NodeId i = 0; i < kOps; ++i) {
    // Blocks when full.
    EXPECT_EQ(q.Push(UpdateOp::AddEdge(i, i)), UpdateQueue::PushResult::kOk);
  }
  consumer.join();
}

TEST(UpdateQueueTest, CloseDrainsThenUnblocks) {
  UpdateQueue q(8, UpdateQueue::FullPolicy::kBlock);
  ASSERT_EQ(q.Push(UpdateOp::AddEdge(7, 8)), UpdateQueue::PushResult::kOk);
  q.Close();
  // Closed: terminally rejected.
  EXPECT_EQ(q.Push(UpdateOp::AddEdge(9, 10)),
            UpdateQueue::PushResult::kClosed);
  std::vector<UpdateOp> batch;
  ASSERT_TRUE(q.PopBatch(10, &batch));  // queued op still drains
  EXPECT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0].u, 7);
  EXPECT_FALSE(q.PopBatch(10, &batch));  // closed and empty: consumer exits
}

// ---------------------------------------------------------------------------
// QueryServer: serving correctness.
// ---------------------------------------------------------------------------

DkIndex BuildMovieIndex(DataGraph* g) {
  LabelRequirements reqs;
  reqs[g->labels().Find("title")] = 2;
  return DkIndex::Build(g, reqs);
}

TEST(QueryServerTest, ServesGroundTruthAnswers) {
  DataGraph g = testing_util::BuildMovieGraph();
  DataGraph truth_graph = g;
  DkIndex dk = BuildMovieIndex(&g);
  QueryServer server(dk);

  for (const char* text :
       {"director.movie.title", "actor.movie.title", "movieDB//title"}) {
    auto result = server.Evaluate(text);
    ASSERT_TRUE(result.has_value()) << text;
    EXPECT_EQ(*result,
              EvaluateOnDataGraph(
                  truth_graph,
                  testing_util::MustParse(text, truth_graph.labels())))
        << text;
  }
  // Repeats hit the shared cache.
  auto repeat = server.Evaluate("director.movie.title");
  ASSERT_TRUE(repeat.has_value());
  EXPECT_GT(server.cache_stats().hits, 0);
}

TEST(QueryServerTest, ParseErrorsAreReportedNotServed) {
  DataGraph g = testing_util::BuildMovieGraph();
  DkIndex dk = BuildMovieIndex(&g);
  QueryServer server(dk);
  std::string error;
  EXPECT_FALSE(server.Evaluate("movie..", nullptr, &error).has_value());
  EXPECT_FALSE(error.empty());
}

TEST(QueryServerTest, AppliesUpdatesInSubmissionOrder) {
  Rng rng(4001);
  DataGraph original = testing_util::RandomGraph(150, 4, 25, &rng);
  LabelRequirements reqs;
  reqs[static_cast<LabelId>(rng.UniformInt(2, original.labels().size() - 1))] =
      2;

  // Offline reference: apply the ops sequentially to a private copy.
  DataGraph offline_graph = original;
  DkIndex offline = DkIndex::Build(&offline_graph, reqs);
  std::string probe = testing_util::RandomChainQuery(original, 3, &rng);

  std::vector<UpdateOp> ops;
  for (int i = 0; i < 40; ++i) {
    NodeId u = static_cast<NodeId>(
        rng.UniformInt(1, offline_graph.NumNodes() - 1));
    NodeId v = static_cast<NodeId>(
        rng.UniformInt(1, offline_graph.NumNodes() - 1));
    if (u == v) continue;
    if (offline_graph.HasEdge(u, v)) {
      ops.push_back(UpdateOp::RemoveEdge(u, v));
      offline.RemoveEdge(u, v);
    } else {
      ops.push_back(UpdateOp::AddEdge(u, v));
      offline.AddEdge(u, v);
    }
  }
  auto expected = EvaluateOnIndex(
      offline.index(),
      testing_util::MustParse(probe, offline_graph.labels()));

  // Online: same initial state, same ops through the queue.
  DataGraph online_graph = original;
  DkIndex dk = DkIndex::Build(&online_graph, reqs);
  QueryServer server(dk);
  for (const UpdateOp& op : ops) {
    ASSERT_TRUE(op.kind == UpdateOp::Kind::kAddEdge
                    ? server.SubmitAddEdge(op.u, op.v)
                    : server.SubmitRemoveEdge(op.u, op.v));
  }
  server.Flush();

  QueryServer::Stats stats = server.stats();
  EXPECT_EQ(stats.ops_accepted, static_cast<int64_t>(ops.size()));
  EXPECT_EQ(stats.ops_applied, static_cast<int64_t>(ops.size()));
  EXPECT_EQ(stats.ops_invalid, 0);

  auto served = server.Evaluate(probe);
  ASSERT_TRUE(served.has_value());
  EXPECT_EQ(*served, expected);
  // Same op sequence, same epoch trajectory: the served snapshot's epoch
  // matches the sequential run exactly.
  EXPECT_EQ(server.snapshot()->epoch(), offline.epoch());
}

TEST(QueryServerTest, SnapshotIsolationAcrossRepublish) {
  DataGraph g = testing_util::BuildMovieGraph();
  DkIndex dk = BuildMovieIndex(&g);
  QueryServer server(dk);
  const std::string text = "actor.movie.title";

  // An edge that grows the answer: a movie-less actor to an actor-less movie
  // (same construction as the result-cache epoch test).
  LabelId actor = g.labels().Find("actor");
  LabelId movie = g.labels().Find("movie");
  NodeId lone_actor = kInvalidNode, unshared_movie = kInvalidNode;
  for (NodeId a : g.NodesWithLabel(actor)) {
    bool has_movie_child = false;
    for (NodeId c : g.children(a)) {
      if (g.label(c) == movie) has_movie_child = true;
    }
    if (!has_movie_child) lone_actor = a;
  }
  for (NodeId m : g.NodesWithLabel(movie)) {
    bool has_actor_parent = false;
    for (NodeId p : g.parents(m)) {
      if (g.label(p) == actor) has_actor_parent = true;
    }
    if (!has_actor_parent) unshared_movie = m;
  }
  ASSERT_NE(lone_actor, kInvalidNode);
  ASSERT_NE(unshared_movie, kInvalidNode);

  std::shared_ptr<const IndexSnapshot> held = server.snapshot();
  auto before = server.EvaluateOn(*held, text);
  ASSERT_TRUE(before.has_value());

  ASSERT_TRUE(server.SubmitAddEdge(lone_actor, unshared_movie));
  server.Flush();

  // The held snapshot is bit-identical to its pre-update self...
  auto held_again = server.EvaluateOn(*held, text);
  ASSERT_TRUE(held_again.has_value());
  EXPECT_EQ(*held_again, *before);

  // ...while the fresh snapshot serves the new answer at a later epoch.
  std::shared_ptr<const IndexSnapshot> fresh = server.snapshot();
  EXPECT_GT(fresh->epoch(), held->epoch());
  auto after = server.EvaluateOn(*fresh, text);
  ASSERT_TRUE(after.has_value());
  EXPECT_NE(*after, *before);
  EXPECT_EQ(*after,
            EvaluateOnIndex(fresh->index(),
                            testing_util::MustParse(
                                text, fresh->graph().labels())));
}

TEST(QueryServerTest, AddSubgraphServesNewLabels) {
  DataGraph g = testing_util::BuildMovieGraph();
  DkIndex dk = BuildMovieIndex(&g);
  QueryServer server(dk);

  DataGraph h;
  NodeId x = h.AddNode("studio");
  NodeId y = h.AddNode("lot");
  h.AddEdge(h.root(), x);
  h.AddEdge(x, y);

  // Unknown labels evaluate to empty (not an error) before the update.
  auto before = server.Evaluate("studio.lot");
  ASSERT_TRUE(before.has_value());
  EXPECT_TRUE(before->empty());

  ASSERT_TRUE(server.SubmitAddSubgraph(std::move(h)));
  server.Flush();

  auto after = server.Evaluate("studio.lot");
  ASSERT_TRUE(after.has_value());
  EXPECT_EQ(after->size(), 1u);
}

TEST(QueryServerTest, InvalidOpsAreDroppedNotFatal) {
  DataGraph g = testing_util::BuildMovieGraph();
  DkIndex dk = BuildMovieIndex(&g);
  QueryServer server(dk);
  ASSERT_TRUE(server.SubmitAddEdge(1, static_cast<NodeId>(1 << 20)));
  ASSERT_TRUE(server.SubmitRemoveEdge(-3, 1));
  server.Flush();
  QueryServer::Stats stats = server.stats();
  EXPECT_EQ(stats.ops_applied, 2);
  EXPECT_EQ(stats.ops_invalid, 2);
  EXPECT_TRUE(server.Evaluate("director.movie.title").has_value());
}

TEST(QueryServerTest, StopRejectsFurtherSubmissions) {
  DataGraph g = testing_util::BuildMovieGraph();
  DkIndex dk = BuildMovieIndex(&g);
  QueryServer server(dk);
  ASSERT_TRUE(server.SubmitAddEdge(1, 2));
  server.Stop();
  EXPECT_FALSE(server.SubmitAddEdge(2, 3));
  QueryServer::Stats stats = server.stats();
  EXPECT_EQ(stats.ops_rejected, 1);
  EXPECT_EQ(stats.ops_rejected_closed, 1);  // shutdown, not backpressure
  EXPECT_EQ(stats.ops_rejected_full, 0);
  EXPECT_EQ(stats.ops_applied, 1);  // pre-stop op drained before the join
  // The read path survives shutdown.
  EXPECT_TRUE(server.Evaluate("director.movie.title").has_value());
}

// The acceptance-criteria test: concurrent readers + one update stream must
// observe ONLY states produced by a sequential interleaving of the same
// ops — every (epoch, result) pair a reader records must match the answer
// the offline sequential run computed at that exact epoch.
TEST(QueryServerTest, ConcurrentReadersSeeOnlySequentialStates) {
  Rng rng(4003);
  DataGraph original = testing_util::RandomGraph(200, 4, 30, &rng);
  LabelRequirements reqs;
  reqs[static_cast<LabelId>(rng.UniformInt(2, original.labels().size() - 1))] =
      2;
  std::string probe = testing_util::RandomChainQuery(original, 3, &rng);

  // Offline: map every epoch the op stream can produce to its exact answer.
  DataGraph offline_graph = original;
  DkIndex offline = DkIndex::Build(&offline_graph, reqs);
  std::map<uint64_t, std::vector<NodeId>> expected;
  auto record = [&] {
    expected[offline.epoch()] = EvaluateOnIndex(
        offline.index(),
        testing_util::MustParse(probe, offline_graph.labels()));
  };
  record();  // the initial published state
  std::vector<UpdateOp> ops;
  for (int i = 0; i < 60; ++i) {
    NodeId u = static_cast<NodeId>(
        rng.UniformInt(1, offline_graph.NumNodes() - 1));
    NodeId v = static_cast<NodeId>(
        rng.UniformInt(1, offline_graph.NumNodes() - 1));
    if (u == v) continue;
    if (offline_graph.HasEdge(u, v)) {
      ops.push_back(UpdateOp::RemoveEdge(u, v));
      offline.RemoveEdge(u, v);
    } else {
      ops.push_back(UpdateOp::AddEdge(u, v));
      offline.AddEdge(u, v);
    }
    record();  // a snapshot may be published after any op boundary
  }

  DataGraph online_graph = original;
  DkIndex dk = DkIndex::Build(&online_graph, reqs);
  QueryServer::Options options;
  options.max_batch = 4;  // several republishes along the stream
  QueryServer server(dk, options);

  constexpr int kReaders = 4;
  constexpr int kReadsPerReader = 40;
  std::vector<std::vector<std::pair<uint64_t, std::vector<NodeId>>>> seen(
      kReaders);
  std::atomic<bool> start{false};
  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      while (!start.load(std::memory_order_acquire)) std::this_thread::yield();
      for (int i = 0; i < kReadsPerReader; ++i) {
        std::shared_ptr<const IndexSnapshot> snap = server.snapshot();
        auto result = server.EvaluateOn(*snap, probe);
        ASSERT_TRUE(result.has_value());
        seen[static_cast<size_t>(r)].emplace_back(snap->epoch(),
                                                  std::move(*result));
      }
    });
  }

  start.store(true, std::memory_order_release);
  for (const UpdateOp& op : ops) {
    ASSERT_TRUE(op.kind == UpdateOp::Kind::kAddEdge
                    ? server.SubmitAddEdge(op.u, op.v)
                    : server.SubmitRemoveEdge(op.u, op.v));
  }
  server.Flush();
  for (std::thread& t : readers) t.join();

  int64_t observations = 0;
  for (const auto& reader_log : seen) {
    for (const auto& [epoch, result] : reader_log) {
      auto it = expected.find(epoch);
      ASSERT_NE(it, expected.end())
          << "reader observed epoch " << epoch
          << " that no sequential prefix produces";
      EXPECT_EQ(result, it->second) << "at epoch " << epoch;
      ++observations;
    }
  }
  EXPECT_EQ(observations, kReaders * kReadsPerReader);
  // And the final state agrees with the full sequential run.
  EXPECT_EQ(server.snapshot()->epoch(), offline.epoch());
}

// ---------------------------------------------------------------------------
// kRetune: load-driven promote/demote through the update pipeline.
// ---------------------------------------------------------------------------

TEST(QueryServerTest, RetunePromotesThroughThePipeline) {
  DataGraph g = testing_util::BuildMovieGraph();
  DataGraph truth_graph = g;
  // Start maximally coarse (no requirements): answers need validation.
  DkIndex dk = DkIndex::Build(&g, {});
  QueryServer server(dk);
  const LabelId title = server.snapshot()->graph().labels().Find("title");
  ASSERT_GE(title, 0);

  ASSERT_TRUE(server.SubmitRetune({{title, 2}}, /*shrink=*/false));
  server.Flush();
  // The published snapshot now carries the promoted requirement...
  const auto& eff = server.snapshot()->effective_requirements();
  ASSERT_LT(static_cast<size_t>(title), eff.size());
  EXPECT_GE(eff[static_cast<size_t>(title)], 2);
  // ...and still serves ground truth.
  for (const char* text : {"director.movie.title", "actor.movie.title"}) {
    auto result = server.Evaluate(text);
    ASSERT_TRUE(result.has_value()) << text;
    EXPECT_EQ(*result,
              EvaluateOnDataGraph(
                  truth_graph,
                  testing_util::MustParse(text, truth_graph.labels())))
        << text;
  }
  EXPECT_EQ(server.stats().ops_applied, 1);
  EXPECT_EQ(server.stats().ops_invalid, 0);
}

TEST(QueryServerTest, RetuneShrinkDemotesAndKeepsAnswersExact) {
  DataGraph g = testing_util::BuildMovieGraph();
  DataGraph truth_graph = g;
  LabelRequirements generous;
  generous[g.labels().Find("title")] = 3;
  generous[g.labels().Find("movie")] = 2;
  DkIndex dk = DkIndex::Build(&g, generous);
  QueryServer server(dk);
  const int64_t nodes_before = server.snapshot()->index().NumIndexNodes();

  // Shrink to a much weaker target: the quotienting demote must coarsen the
  // index (or at least not grow it) without breaking validated answers.
  const LabelId title = truth_graph.labels().Find("title");
  ASSERT_TRUE(server.SubmitRetune({{title, 1}}, /*shrink=*/true));
  server.Flush();
  EXPECT_LE(server.snapshot()->index().NumIndexNodes(), nodes_before);
  const auto& eff = server.snapshot()->effective_requirements();
  EXPECT_EQ(eff[static_cast<size_t>(title)], 1);
  for (const char* text :
       {"director.movie.title", "actor.movie.title", "movieDB//title"}) {
    auto result = server.Evaluate(text);
    ASSERT_TRUE(result.has_value()) << text;
    EXPECT_EQ(*result,
              EvaluateOnDataGraph(
                  truth_graph,
                  testing_util::MustParse(text, truth_graph.labels())))
        << text;
  }
}

TEST(QueryServerTest, RetuneWithInvalidLabelIsDroppedNotFatal) {
  DataGraph g = testing_util::BuildMovieGraph();
  DkIndex dk = BuildMovieIndex(&g);
  QueryServer server(dk);
  ASSERT_TRUE(server.SubmitRetune({{9999, 2}}, /*shrink=*/true));
  server.Flush();
  EXPECT_EQ(server.stats().ops_invalid, 1);
  EXPECT_TRUE(server.Evaluate("director.movie.title").has_value());
}

TEST(QueryServerTest, MinedRequirementsDriveRetune) {
  // End-to-end shape of the traffic simulator's controller: record traffic,
  // mine requirements, submit them, observe the promoted snapshot.
  DataGraph g = testing_util::BuildMovieGraph();
  DkIndex dk = DkIndex::Build(&g, {});
  QueryServer server(dk);
  const LabelTable& labels = server.snapshot()->graph().labels();

  QueryLoadTracker tracker;
  tracker.Record(testing_util::MustParse("director.movie.title", labels),
                 labels, 100);
  LabelRequirements mined = tracker.MineRequirements(1.0);
  ASSERT_FALSE(mined.empty());
  ASSERT_TRUE(server.SubmitRetune(mined, /*shrink=*/true));
  server.Flush();
  const auto& eff = server.snapshot()->effective_requirements();
  for (const auto& [label, k] : mined) {
    ASSERT_LT(static_cast<size_t>(label), eff.size());
    EXPECT_GE(eff[static_cast<size_t>(label)], k) << "label " << label;
  }
}

// ---------------------------------------------------------------------------
// ParseCache (query/parse_cache.h): incremental LRU eviction, label-version
// revalidation, cached parse failures.
// ---------------------------------------------------------------------------

Counter& TestCounter(const std::string& name) {
  Counter& c = MetricsRegistry::Global().GetCounter(name);
  c.Reset();
  return c;
}

TEST(ParseCacheTest, HotEntrySurvivesColdCycling) {
  // The regression this guards: the old cache dropped EVERYTHING when it
  // hit its cap, so a cycling cold stream forced the hot query to re-parse
  // once per wipe. With per-entry LRU eviction the hot query — touched
  // every iteration — parses exactly once, and total re-parses equal the
  // distinct texts seen: misses are O(evictions), not O(traffic).
  Counter& hits = TestCounter("test.parse_cache.cycling.hits");
  Counter& misses = TestCounter("test.parse_cache.cycling.misses");
  Counter& evictions = TestCounter("test.parse_cache.cycling.evictions");

  LabelTable labels;
  constexpr size_t kCap = 64;
  ParseCache cache("test.parse_cache.cycling", kCap);
  const std::string hot = "movieDB.director.movie";
  const int kCold = 200;  // distinct cold texts, far above capacity
  for (int i = 0; i < kCold; ++i) {
    ASSERT_NE(cache.Get(hot, labels, nullptr), nullptr);
    ASSERT_NE(cache.Get("cold" + std::to_string(i), labels, nullptr),
              nullptr);
  }
  EXPECT_EQ(misses.value(), kCold + 1);  // each distinct text parsed once
  EXPECT_EQ(hits.value(), kCold - 1);    // every later hot access hits
  EXPECT_EQ(evictions.value(), kCold + 1 - static_cast<int64_t>(kCap));
}

TEST(ParseCacheTest, StaleLabelVersionReparsesInPlace) {
  Counter& misses = TestCounter("test.parse_cache.stale.misses");
  Counter& evictions = TestCounter("test.parse_cache.stale.evictions");
  LabelTable labels;
  ParseCache cache("test.parse_cache.stale", 64);
  auto first = cache.Get("studio.film", labels, nullptr);
  ASSERT_NE(first, nullptr);
  // Same label version: the exact compiled object comes back.
  EXPECT_EQ(cache.Get("studio.film", labels, nullptr).get(), first.get());
  EXPECT_EQ(misses.value(), 1);
  // The label table grew: the entry revalidates by re-parsing in place —
  // one miss, no eviction — and the caller's old shared_ptr stays valid.
  labels.Intern("studio");
  auto second = cache.Get("studio.film", labels, nullptr);
  ASSERT_NE(second, nullptr);
  EXPECT_NE(second.get(), first.get());
  EXPECT_EQ(misses.value(), 2);
  EXPECT_EQ(evictions.value(), 0);
}

TEST(ParseCacheTest, ParseFailuresAreCachedWithTheirError) {
  Counter& hits = TestCounter("test.parse_cache.fail.hits");
  Counter& misses = TestCounter("test.parse_cache.fail.misses");
  LabelTable labels;
  ParseCache cache("test.parse_cache.fail", 64);
  std::string error;
  EXPECT_EQ(cache.Get("movie..", labels, &error), nullptr);
  ASSERT_FALSE(error.empty());
  const std::string first_error = error;
  error.clear();
  // The second lookup is a HIT that replays the cached failure.
  EXPECT_EQ(cache.Get("movie..", labels, &error), nullptr);
  EXPECT_EQ(error, first_error);
  EXPECT_EQ(misses.value(), 1);
  EXPECT_EQ(hits.value(), 1);
}

TEST(QueryServerTest, ColdQueryCyclingEvictsIncrementally) {
  // Same property end-to-end through the server's read path, at the real
  // capacity: cycling 5000 distinct cold queries past a hot one costs
  // exactly one parse per distinct text, with evictions = overflow.
  Counter& hits = TestCounter("serve.parse_cache.hits");
  Counter& misses = TestCounter("serve.parse_cache.misses");
  Counter& evictions = TestCounter("serve.parse_cache.evictions");

  DataGraph g = testing_util::BuildMovieGraph();
  DkIndex dk = BuildMovieIndex(&g);
  QueryServer server(dk);
  const std::string hot = "director.movie.title";
  const int kCold = 5000;  // above QueryServer::kMaxParsedQueries (4096)
  for (int i = 0; i < kCold; ++i) {
    ASSERT_TRUE(server.Evaluate(hot).has_value());
    // Unknown labels parse fine and match nothing, so each cold query is a
    // cheap distinct parse.
    ASSERT_TRUE(server.Evaluate("cold" + std::to_string(i)).has_value());
  }
  EXPECT_EQ(misses.value(), kCold + 1);
  EXPECT_EQ(hits.value(), kCold - 1);
  EXPECT_EQ(evictions.value(), kCold + 1 - 4096);
}

// ---------------------------------------------------------------------------
// EvaluateBatch concurrency: all-hit batches run without the fan-out lock
// (this test is in the TSan suite; a race here fails the sanitizer run).
// ---------------------------------------------------------------------------

TEST(QueryServerTest, ConcurrentAllHitBatchesStayBitIdentical) {
  DataGraph g = testing_util::BuildMovieGraph();
  DkIndex dk = BuildMovieIndex(&g);
  QueryServer server(dk);
  const std::vector<std::string> batch = {
      "director.movie.title", "actor.movie.title", "movieDB//title",
      "director.name"};
  // Warm every cache: from here on, concurrent batches are pure hits and
  // take the lock-free path (cache probe + parse outside batch_mu_).
  const auto reference = server.EvaluateBatch(batch);
  for (const auto& r : reference) ASSERT_TRUE(r.has_value());

  std::vector<std::thread> threads;
  std::atomic<int> mismatches{0};
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 50; ++i) {
        const auto got = server.EvaluateBatch(batch);
        if (got != reference) mismatches.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(WalCodecTest, RetuneRecordRoundTrips) {
  LabelRequirements targets{{3, 2}, {1, 4}, {7, 0}};
  const UpdateOp op = UpdateOp::Retune(targets, /*shrink=*/true);
  const std::string record = WriteAheadLog::EncodeRecord(op, 42);
  ASSERT_GT(record.size(), 8u);  // u32 len + u32 crc header
  WriteAheadLog::Record decoded;
  ASSERT_TRUE(WriteAheadLog::DecodePayload(
      std::string_view(record).substr(8), &decoded));
  EXPECT_EQ(decoded.seq, 42u);
  EXPECT_EQ(decoded.op.kind, UpdateOp::Kind::kRetune);
  EXPECT_TRUE(decoded.op.retune_shrink);
  EXPECT_EQ(decoded.op.retune_targets, targets);
  // Deterministic encoding: re-encoding the decoded op is byte-identical
  // (the WAL rewrite path depends on this).
  EXPECT_EQ(WriteAheadLog::EncodeRecord(decoded.op, 42), record);

  const UpdateOp no_shrink = UpdateOp::Retune({{0, 1}}, /*shrink=*/false);
  const std::string record2 = WriteAheadLog::EncodeRecord(no_shrink, 7);
  WriteAheadLog::Record decoded2;
  ASSERT_TRUE(WriteAheadLog::DecodePayload(
      std::string_view(record2).substr(8), &decoded2));
  EXPECT_FALSE(decoded2.op.retune_shrink);
}

}  // namespace
}  // namespace dki
