#include "index/dk_index.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "index/ak_index.h"
#include "index/one_index.h"
#include "query/evaluator.h"
#include "query/load_analyzer.h"
#include "tests/test_util.h"

namespace dki {
namespace {

TEST(ComputeLabelParentsTest, HighFaninLabelDeduplicates) {
  // One target label with thousands of same-labeled parents: the per-label
  // seen-mark must collapse them to a single adjacency entry (the old
  // linear rescan was O(parents²) per node on exactly this shape).
  DataGraph g;
  NodeId hub = g.AddNode("hub");
  g.AddEdge(g.root(), hub);
  std::vector<NodeId> fans;
  for (int i = 0; i < 4000; ++i) {
    NodeId fan = g.AddNode("fan");
    g.AddEdgeUnchecked(g.root(), fan);
    g.AddEdgeUnchecked(fan, hub);
  }
  // A second child label under the fans, sharing the seen-marks per label.
  NodeId leaf = g.AddNode("leaf");
  g.AddEdgeUnchecked(g.AddNode("fan"), leaf);
  g.AddEdgeUnchecked(g.root(), leaf);

  auto parents = ComputeLabelParents(g, g.labels().size());
  LabelId hub_l = g.label(hub);
  LabelId fan_l = g.labels().Find("fan");
  // hub's parents collapse to exactly {ROOT, fan} despite 4000 fan edges.
  ASSERT_EQ(parents[static_cast<size_t>(hub_l)].size(), 2u);
  EXPECT_EQ(parents[static_cast<size_t>(hub_l)][0], g.label(g.root()));
  EXPECT_EQ(parents[static_cast<size_t>(hub_l)][1], fan_l);
  // fan's parents: ROOT only (the extra fan node has no parent edge from
  // another label).
  EXPECT_EQ(parents[static_cast<size_t>(fan_l)].size(), 1u);
}

TEST(BroadcastTest, PaperRule) {
  // Labels: 0 -> 1 (0 is parent of 1). If req(1) = 2 and req(0) = 0, the
  // broadcast must raise req(0) to 1 (the Section 4.2 example).
  std::vector<std::vector<LabelId>> parents(2);
  parents[1] = {0};
  std::vector<int> req = {0, 2};
  std::vector<int> out = BroadcastLabelRequirements(parents, req);
  EXPECT_EQ(out, (std::vector<int>{1, 2}));
}

TEST(BroadcastTest, CascadesThroughChains) {
  // Chain 0 -> 1 -> 2 -> 3 with req(3) = 3: ancestors get 2, 1, 0.
  std::vector<std::vector<LabelId>> parents(4);
  parents[1] = {0};
  parents[2] = {1};
  parents[3] = {2};
  std::vector<int> req = {0, 0, 0, 3};
  EXPECT_EQ(BroadcastLabelRequirements(parents, req),
            (std::vector<int>{0, 1, 2, 3}));
}

TEST(BroadcastTest, TakesMaximumAcrossChildren) {
  // 0 is parent of 1 (req 2) and 2 (req 3): req(0) = max(1, 2) = 2.
  std::vector<std::vector<LabelId>> parents(3);
  parents[1] = {0};
  parents[2] = {0};
  std::vector<int> req = {0, 2, 3};
  EXPECT_EQ(BroadcastLabelRequirements(parents, req),
            (std::vector<int>{2, 2, 3}));
}

TEST(BroadcastTest, CyclesTerminate) {
  // 0 <-> 1 cycle with req(0) = 4: requirement decays around the cycle.
  std::vector<std::vector<LabelId>> parents(2);
  parents[0] = {1};
  parents[1] = {0};
  std::vector<int> req = {4, 0};
  std::vector<int> out = BroadcastLabelRequirements(parents, req);
  EXPECT_EQ(out, (std::vector<int>{4, 3}));
}

TEST(BroadcastTest, SelfLoopStops) {
  std::vector<std::vector<LabelId>> parents(1);
  parents[0] = {0};
  EXPECT_EQ(BroadcastLabelRequirements(parents, {3}),
            (std::vector<int>{3}));
}

TEST(BroadcastTest, NoRequirementsNoWork) {
  std::vector<std::vector<LabelId>> parents(3);
  EXPECT_EQ(BroadcastLabelRequirements(parents, {0, 0, 0}),
            (std::vector<int>{0, 0, 0}));
}

TEST(DkIndexTest, AllZeroRequirementsIsLabelSplit) {
  DataGraph g = testing_util::BuildMovieGraph();
  DkIndex dk = DkIndex::Build(&g, {});
  EXPECT_EQ(dk.index().NumIndexNodes(), g.labels().size());
  for (IndexNodeId i = 0; i < dk.index().NumIndexNodes(); ++i) {
    EXPECT_EQ(dk.index().k(i), 0);
  }
}

TEST(DkIndexTest, UniformRequirementsEqualAkIndex) {
  // With the same k required for every label, D(k) must coincide with A(k)
  // (the paper's "A(k) is a special case" claim).
  Rng rng(71);
  for (int k = 1; k <= 3; ++k) {
    DataGraph g = testing_util::RandomGraph(120, 4, 25, &rng);
    LabelRequirements reqs;
    for (LabelId l = 0; l < g.labels().size(); ++l) reqs[l] = k;
    DkIndex dk = DkIndex::Build(&g, reqs);
    AkIndex ak = AkIndex::Build(&g, k);
    EXPECT_EQ(dk.index().NumIndexNodes(), ak.index().NumIndexNodes())
        << "k=" << k;
    for (NodeId u = 0; u < g.NumNodes(); ++u) {
      EXPECT_EQ(dk.index().index_of(u) == dk.index().index_of(0),
                ak.index().index_of(u) == ak.index().index_of(0));
    }
  }
}

TEST(DkIndexTest, ConstructionSatisfiesStructuralConstraint) {
  Rng rng(73);
  for (int trial = 0; trial < 10; ++trial) {
    DataGraph g = testing_util::RandomGraph(100, 5, 20, &rng);
    LabelRequirements reqs;
    for (int i = 0; i < 3; ++i) {
      reqs[static_cast<LabelId>(rng.UniformInt(2, g.labels().size() - 1))] =
          static_cast<int>(rng.UniformInt(1, 4));
    }
    DkIndex dk = DkIndex::Build(&g, reqs);
    std::string error;
    EXPECT_TRUE(dk.index().ValidatePartition(&error)) << error;
    EXPECT_TRUE(dk.index().ValidateEdges(&error)) << error;
    EXPECT_TRUE(dk.index().ValidateDkConstraint(&error)) << error;
  }
}

TEST(DkIndexTest, SizeBetweenLabelSplitAndOneIndex) {
  Rng rng(79);
  DataGraph g = testing_util::RandomGraph(300, 4, 60, &rng);
  LabelRequirements reqs;
  reqs[g.labels().Find("a")] = 2;
  DkIndex dk = DkIndex::Build(&g, reqs);
  IndexGraph one = OneIndex::Build(&g);
  EXPECT_GE(dk.index().NumIndexNodes(), g.labels().size());
  EXPECT_LE(dk.index().NumIndexNodes(), one.NumIndexNodes());
}

TEST(DkIndexTest, RequiredLabelAnswersItsQueriesWithoutValidation) {
  Rng rng(83);
  DataGraph g = testing_util::RandomGraph(200, 4, 40, &rng);
  // Mine requirements for a concrete query set, then check soundness.
  std::vector<std::string> queries;
  for (int i = 0; i < 10; ++i) {
    queries.push_back(testing_util::RandomChainQuery(
        g, static_cast<int>(rng.UniformInt(2, 4)), &rng));
  }
  LabelRequirements reqs;
  {
    std::vector<PathExpression> parsed;
    for (const auto& text : queries) {
      parsed.push_back(testing_util::MustParse(text, g.labels()));
    }
    reqs = MineRequirements(parsed, g.labels());
  }
  DkIndex dk = DkIndex::Build(&g, reqs);
  for (const auto& text : queries) {
    PathExpression q = testing_util::MustParse(text, g.labels());
    EvalStats stats;
    auto result = EvaluateOnIndex(dk.index(), q, &stats);
    EXPECT_EQ(result, EvaluateOnDataGraph(g, q)) << text;
    EXPECT_EQ(stats.uncertain_index_nodes, 0)
        << text << " triggered validation on its own workload";
  }
}

TEST(DkIndexTest, EffectiveRequirementAccessor) {
  DataGraph g = testing_util::BuildMovieGraph();
  LabelRequirements reqs;
  LabelId title = g.labels().Find("title");
  reqs[title] = 2;
  DkIndex dk = DkIndex::Build(&g, reqs);
  EXPECT_EQ(dk.effective_requirement(title), 2);
  // The movie label is a parent of title: broadcast gives it at least 1.
  EXPECT_GE(dk.effective_requirement(g.labels().Find("movie")), 1);
  EXPECT_EQ(dk.effective_requirement(kInvalidLabel), 0);
}

}  // namespace
}  // namespace dki
