#include "common/random.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

namespace dki {
namespace {

// ---------------------------------------------------------------------------
// NURand: TPC-C's skewed integer generator (the traffic simulator's hot
// update keys).
// ---------------------------------------------------------------------------

TEST(NURandTest, StaysInRange) {
  Rng rng(42);
  const int64_t a = Rng::DefaultNURandA(1000);
  for (int i = 0; i < 10000; ++i) {
    const int64_t v = rng.NURand(a, 0, 999, 123);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 999);
  }
}

TEST(NURandTest, DefaultAMatchesTpccConstants) {
  // TPC-C fixes A=255 for spans ~1000 and A=1023 for spans ~3000 — the
  // smallest 2^b - 1 at least a quarter of the span.
  EXPECT_EQ(Rng::DefaultNURandA(1000), 255);
  EXPECT_EQ(Rng::DefaultNURandA(3000), 1023);
  EXPECT_EQ(Rng::DefaultNURandA(1), 1);
  EXPECT_EQ(Rng::DefaultNURandA(8), 3);
  // Always of the form 2^b - 1.
  for (int64_t span : {1, 2, 7, 100, 1000, 12345}) {
    const int64_t a = Rng::DefaultNURandA(span);
    EXPECT_EQ(a & (a + 1), 0) << span;
  }
}

TEST(NURandTest, IsSkewedNotUniform) {
  // The OR with a narrow uniform concentrates mass: the most popular decile
  // of values must absorb far more than its uniform 10% share.
  Rng rng(7);
  const int64_t span = 1000;
  const int64_t a = Rng::DefaultNURandA(span);
  std::vector<int64_t> counts(static_cast<size_t>(span), 0);
  const int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) {
    ++counts[static_cast<size_t>(rng.NURand(a, 0, span - 1, 77))];
  }
  std::sort(counts.begin(), counts.end(), std::greater<int64_t>());
  int64_t top_decile = 0;
  for (size_t i = 0; i < counts.size() / 10; ++i) top_decile += counts[i];
  EXPECT_GT(static_cast<double>(top_decile) / kDraws, 0.25);
}

TEST(NURandTest, RunConstantFixesTheHotSet) {
  // Same C -> same hot values; different C -> a (mostly) different hot set.
  auto hottest = [](int64_t c) {
    Rng rng(99);
    const int64_t a = Rng::DefaultNURandA(1000);
    std::vector<int64_t> counts(1000, 0);
    for (int i = 0; i < 100000; ++i) {
      ++counts[static_cast<size_t>(rng.NURand(a, 0, 999, c))];
    }
    return static_cast<int64_t>(
        std::max_element(counts.begin(), counts.end()) - counts.begin());
  };
  EXPECT_EQ(hottest(11), hottest(11));
  EXPECT_NE(hottest(11), hottest(500));
}

TEST(NURandTest, DeterministicFromSeed) {
  Rng a(12345), b(12345);
  const int64_t A = Rng::DefaultNURandA(5000);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.NURand(A, 10, 5009, 42), b.NURand(A, 10, 5009, 42));
  }
}

// ---------------------------------------------------------------------------
// ZipfSampler: rank-popularity skew for the traffic simulator's query pool.
// ---------------------------------------------------------------------------

TEST(ZipfSamplerTest, PmfSumsToOneAndIsMonotone) {
  ZipfSampler zipf(100, 1.0);
  double total = 0.0;
  for (size_t r = 0; r < zipf.n(); ++r) {
    total += zipf.pmf(r);
    if (r > 0) {
      EXPECT_LE(zipf.pmf(r), zipf.pmf(r - 1) + 1e-12);
    }
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ZipfSamplerTest, ZeroExponentIsUniform) {
  ZipfSampler zipf(10, 0.0);
  for (size_t r = 0; r < zipf.n(); ++r) {
    EXPECT_NEAR(zipf.pmf(r), 0.1, 1e-12);
  }
}

TEST(ZipfSamplerTest, EmpiricalFrequenciesMatchPmf) {
  // s = 1 over 50 ranks: rank 0 carries ~22%; verify every rank's empirical
  // frequency lands near its analytic mass.
  ZipfSampler zipf(50, 1.0);
  Rng rng(2718);
  std::vector<int64_t> counts(zipf.n(), 0);
  const int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) ++counts[zipf.Sample(&rng)];
  for (size_t r = 0; r < zipf.n(); ++r) {
    const double expected = zipf.pmf(r) * kDraws;
    EXPECT_NEAR(static_cast<double>(counts[r]), expected,
                5.0 * std::sqrt(expected) + 5.0)
        << "rank " << r;
  }
}

TEST(ZipfSamplerTest, DeterministicFromSeed) {
  ZipfSampler zipf(64, 1.2);
  Rng a(31337), b(31337);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(zipf.Sample(&a), zipf.Sample(&b));
  }
}

TEST(ZipfSamplerTest, SingleRankAlwaysSamplesZero) {
  ZipfSampler zipf(1, 1.0);
  Rng rng(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(zipf.Sample(&rng), 0u);
}

}  // namespace
}  // namespace dki
