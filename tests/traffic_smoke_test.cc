// Smoke coverage for the open-loop traffic simulator (bench/traffic_lib.h)
// and the shared BENCH_*.json emitter (bench/bench_json.h): a tiny run must
// complete every phase, and the emitted JSON must round-trip through the
// parser carrying the documented schema (docs/BENCHMARKS.md).

#include "bench/traffic_lib.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "bench/bench_common.h"
#include "bench/bench_json.h"
#include "io/fs_util.h"

namespace dki {
namespace bench {
namespace {

TEST(BenchJsonTest, RoundTripsValuesExactly) {
  Json root = Json::Object();
  root.Set("name", Json::Str("tra\"ffic\n"));
  root.Set("count", Json::Int(1234567890123));
  root.Set("rate", Json::Num(0.125));
  root.Set("ok", Json::Bool(true));
  root.Set("nothing", Json());
  Json arr = Json::Array();
  arr.Push(Json::Int(-7)).Push(Json::Num(2.5)).Push(Json::Str(""));
  root.Set("items", std::move(arr));

  Json parsed;
  std::string error;
  ASSERT_TRUE(Json::Parse(root.ToString(), &parsed, &error)) << error;
  EXPECT_EQ(parsed.Find("name")->AsString(), "tra\"ffic\n");
  EXPECT_EQ(parsed.Find("count")->AsInt(), 1234567890123);
  EXPECT_DOUBLE_EQ(parsed.Find("rate")->AsDouble(), 0.125);
  EXPECT_TRUE(parsed.Find("ok")->AsBool());
  EXPECT_EQ(parsed.Find("nothing")->kind(), Json::Kind::kNull);
  ASSERT_TRUE(parsed.Find("items")->is_array());
  ASSERT_EQ(parsed.Find("items")->items().size(), 3u);
  EXPECT_EQ(parsed.Find("items")->items()[0].AsInt(), -7);
  // Dump of the parse equals the dump of the original (stable formatting).
  EXPECT_EQ(parsed.ToString(), root.ToString());
}

TEST(BenchJsonTest, RejectsMalformedInput) {
  Json out;
  std::string error;
  EXPECT_FALSE(Json::Parse("{\"a\": }", &out, &error));
  EXPECT_FALSE(Json::Parse("[1, 2", &out, &error));
  EXPECT_FALSE(Json::Parse("{} trailing", &out, &error));
  EXPECT_FALSE(Json::Parse("\"unterminated", &out, &error));
  EXPECT_FALSE(error.empty());
}

// One tiny end-to-end run shared by the schema assertions below (building
// the dataset + index dominates, so run it once).
class TrafficSmokeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    Dataset dataset = MakeXmark(0.05);
    TrafficOptions opts;
    opts.query_pool = 16;
    opts.workers = 2;
    opts.phase_sec = 0.15;
    opts.warm_qps = 150.0;
    opts.sweep_qps = {150.0};
    opts.drift_qps = 150.0;
    opts.control_interval_ms = 40.0;
    opts.min_tracked_queries = 4;
    result_ = new TrafficResult(RunTraffic(dataset, opts));
    opts_ = new TrafficOptions(opts);
  }
  static void TearDownTestSuite() {
    delete result_;
    delete opts_;
    result_ = nullptr;
    opts_ = nullptr;
  }

  static TrafficResult* result_;
  static TrafficOptions* opts_;
};

TrafficResult* TrafficSmokeTest::result_ = nullptr;
TrafficOptions* TrafficSmokeTest::opts_ = nullptr;

TEST_F(TrafficSmokeTest, CompletesAllPhasesAndServesTraffic) {
  // warm + 1 sweep + drift.
  ASSERT_EQ(result_->phases.size(), 3u);
  EXPECT_EQ(result_->phases[0].name, "warm");
  EXPECT_EQ(result_->phases.back().name, "drift");
  int64_t total_completed = 0;
  for (const PhaseStats& p : result_->phases) {
    EXPECT_GT(p.arrivals, 0) << p.name;
    EXPECT_GE(p.completed, 0) << p.name;
    EXPECT_GE(p.p99_ms, p.p50_ms) << p.name;
    EXPECT_GE(p.max_ms, p.p99_ms) << p.name;
    total_completed += p.completed;
  }
  EXPECT_GT(total_completed, 0);
}

TEST_F(TrafficSmokeTest, EmittedJsonRoundTripsTheDocumentedSchema) {
  const std::string path =
      ::testing::TempDir() + "BENCH_traffic_smoke.json";
  Json emitted = TrafficResultToJson(*result_, *opts_);
  std::string error;
  ASSERT_TRUE(Json::WriteFile(path, emitted, &error)) << error;

  std::string contents;
  ASSERT_TRUE(ReadFileToString(path, &contents, &error)) << error;
  Json parsed;
  ASSERT_TRUE(Json::Parse(contents, &parsed, &error)) << error;
  std::remove(path.c_str());

  // Schema version 3, as documented in docs/BENCHMARKS.md.
  ASSERT_NE(parsed.Find("bench"), nullptr);
  EXPECT_EQ(parsed.Find("bench")->AsString(), "traffic");
  ASSERT_NE(parsed.Find("version"), nullptr);
  EXPECT_EQ(parsed.Find("version")->AsInt(), 3);
  const Json* dataset = parsed.Find("dataset");
  ASSERT_NE(dataset, nullptr);
  for (const char* key : {"name", "nodes", "edges", "labels"}) {
    EXPECT_NE(dataset->Find(key), nullptr) << key;
  }
  const Json* config = parsed.Find("config");
  ASSERT_NE(config, nullptr);
  for (const char* key : {"seed", "query_pool", "zipf_s", "workers",
                          "update_fraction", "deadline_ms", "phase_sec",
                          "coverage", "num_shards", "durability",
                          "memory_budget_mb"}) {
    EXPECT_NE(config->Find(key), nullptr) << key;
  }
  EXPECT_EQ(config->Find("num_shards")->AsInt(), 0);
  const Json* memory = parsed.Find("memory");
  ASSERT_NE(memory, nullptr);
  for (const char* key :
       {"frozen_flat_bytes", "frozen_resident_bytes",
        "frozen_compressed_bytes", "frozen_spilled_bytes",
        "checkpoint_bytes_written", "max_rss_kb", "exactness_queries",
        "exactness_mismatches"}) {
    EXPECT_NE(memory->Find(key), nullptr) << key;
  }
  // Unbudgeted: the view is flat, so resident == flat and nothing is
  // compressed or spilled; the exactness guard does not run.
  EXPECT_GT(memory->Find("frozen_flat_bytes")->AsInt(), 0);
  EXPECT_EQ(memory->Find("frozen_resident_bytes")->AsInt(),
            memory->Find("frozen_flat_bytes")->AsInt());
  EXPECT_EQ(memory->Find("frozen_spilled_bytes")->AsInt(), 0);
  EXPECT_EQ(memory->Find("exactness_queries")->AsInt(), 0);
  EXPECT_GT(memory->Find("max_rss_kb")->AsInt(), 0);
  const Json* phases = parsed.Find("phases");
  ASSERT_NE(phases, nullptr);
  ASSERT_TRUE(phases->is_array());
  ASSERT_EQ(phases->items().size(), result_->phases.size());
  for (const Json& phase : phases->items()) {
    for (const char* key :
         {"name", "offered_qps", "achieved_qps", "duration_sec", "arrivals",
          "completed", "dropped", "updates_submitted", "updates_rejected",
          "latency_ms", "metrics_delta"}) {
      EXPECT_NE(phase.Find(key), nullptr) << key;
    }
    const Json* lat = phase.Find("latency_ms");
    ASSERT_NE(lat, nullptr);
    for (const char* key : {"p50", "p95", "p99", "max", "mean"}) {
      EXPECT_NE(lat->Find(key), nullptr) << key;
    }
    const Json* deltas = phase.Find("metrics_delta");
    ASSERT_NE(deltas, nullptr);
    for (const char* key :
         {"cache_hits", "cache_misses", "publishes", "wal_appends",
          "retunes_submitted", "promote_label_calls", "demote_calls",
          "ops_applied", "cross_shard_rejects"}) {
      EXPECT_NE(deltas->Find(key), nullptr) << key;
    }
  }
  // Unsharded runs emit an empty per-shard array.
  const Json* shards = parsed.Find("shards");
  ASSERT_NE(shards, nullptr);
  ASSERT_TRUE(shards->is_array());
  EXPECT_TRUE(shards->items().empty());
}

// A sharded run must complete the same phase script through the
// ShardedQueryServer front door, apply its (router-filtered) updates, and
// emit per-shard latency entries in the v2 schema.
TEST(ShardedTrafficSmokeTest, ShardedRunServesAndEmitsPerShardLatency) {
  Dataset dataset = MakeXmarkTree(0.05);
  TrafficOptions opts;
  opts.query_pool = 16;
  opts.workers = 2;
  opts.phase_sec = 0.15;
  opts.warm_qps = 150.0;
  opts.sweep_qps = {150.0};
  opts.drift_qps = 150.0;
  opts.control_interval_ms = 40.0;
  opts.min_tracked_queries = 4;
  opts.update_fraction = 0.2;  // make sure the writer path is exercised
  opts.num_shards = 2;
  TrafficResult result = RunTraffic(dataset, opts);

  ASSERT_EQ(result.phases.size(), 3u);
  int64_t completed = 0, applied = 0, rejects = 0;
  for (const PhaseStats& p : result.phases) {
    completed += p.completed;
    applied += p.ops_applied;
    rejects += p.cross_shard_rejects;
  }
  EXPECT_GT(completed, 0);
  EXPECT_GT(applied, 0);  // router-filtered pool: toggles reach a writer
  EXPECT_EQ(rejects, 0);  // ...and none of them are cross-shard
  ASSERT_EQ(result.shard_latency.size(), 2u);
  int64_t shard_evals = 0;
  for (const ShardLatencyStats& l : result.shard_latency) {
    shard_evals += l.evals;
    EXPECT_GE(l.max_ms, l.p50_ms);
  }
  EXPECT_GT(shard_evals, 0);

  Json emitted = TrafficResultToJson(result, opts);
  EXPECT_EQ(emitted.Find("version")->AsInt(), 3);
  EXPECT_EQ(emitted.Find("config")->Find("num_shards")->AsInt(), 2);
  const Json* shards = emitted.Find("shards");
  ASSERT_NE(shards, nullptr);
  ASSERT_EQ(shards->items().size(), 2u);
  for (const Json& shard : shards->items()) {
    EXPECT_NE(shard.Find("shard"), nullptr);
    EXPECT_NE(shard.Find("evals"), nullptr);
    EXPECT_NE(shard.Find("latency_ms"), nullptr);
  }
}

// A run under a tiny memory budget must serve the whole phase script from
// the compressed/spilled storage tier, report the memory accounting, and
// pass its own built-in exactness guard (every pool query re-checked
// against a flat rebuild of the final snapshot).
TEST(BudgetedTrafficSmokeTest, BudgetedRunServesAndPassesExactnessGuard) {
  Dataset dataset = MakeXmark(0.05);
  TrafficOptions opts;
  opts.query_pool = 16;
  opts.workers = 2;
  opts.phase_sec = 0.15;
  opts.warm_qps = 150.0;
  opts.sweep_qps = {150.0};
  opts.drift_qps = 150.0;
  opts.control_interval_ms = 40.0;
  opts.min_tracked_queries = 4;
  opts.memory_budget_mb = 1;  // tiny: forces compression (and spill on
                              // anything bigger than a toy graph)
  TrafficResult result = RunTraffic(dataset, opts);

  int64_t completed = 0;
  for (const PhaseStats& p : result.phases) completed += p.completed;
  EXPECT_GT(completed, 0);

  const TrafficMemoryStats& m = result.memory;
  EXPECT_GT(m.frozen_flat_bytes, 0);
  EXPECT_GT(m.frozen_compressed_bytes, 0);
  EXPECT_LT(m.frozen_resident_bytes, m.frozen_flat_bytes);
  // One check per pool query (MakeWorkload may round the pool size up).
  EXPECT_GE(m.exactness_queries, opts.query_pool);
  EXPECT_EQ(m.exactness_mismatches, 0);

  Json emitted = TrafficResultToJson(result, opts);
  EXPECT_EQ(emitted.Find("config")->Find("memory_budget_mb")->AsInt(), 1);
  EXPECT_EQ(emitted.Find("memory")->Find("exactness_mismatches")->AsInt(), 0);
}

}  // namespace
}  // namespace bench
}  // namespace dki
