#include "index/index_graph.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/random.h"
#include "index/partition.h"
#include "tests/test_util.h"

namespace dki {
namespace {

IndexGraph LabelSplitIndex(const DataGraph* g) {
  Partition p = LabelSplit(*g);
  std::vector<int> ks(static_cast<size_t>(p.num_blocks), 0);
  return IndexGraph::FromPartition(g, p.block_of, p.num_blocks, ks);
}

TEST(IndexGraphTest, FromPartitionBasics) {
  DataGraph g = testing_util::BuildMovieGraph();
  IndexGraph index = LabelSplitIndex(&g);
  std::string error;
  EXPECT_TRUE(index.ValidatePartition(&error)) << error;
  EXPECT_TRUE(index.ValidateEdges(&error)) << error;
  EXPECT_EQ(index.TotalExtentSize(), g.NumNodes());
  EXPECT_EQ(index.NumIndexNodes(), g.labels().size());

  // Every data node maps to an index node with its label.
  for (NodeId n = 0; n < g.NumNodes(); ++n) {
    EXPECT_EQ(index.label(index.index_of(n)), g.label(n));
  }
}

TEST(IndexGraphTest, DerivedEdges) {
  DataGraph g;
  NodeId a1 = g.AddNode("a");
  NodeId a2 = g.AddNode("a");
  NodeId b = g.AddNode("b");
  g.AddEdge(g.root(), a1);
  g.AddEdge(g.root(), a2);
  g.AddEdge(a1, b);
  IndexGraph index = LabelSplitIndex(&g);
  IndexNodeId ia = index.index_of(a1);
  IndexNodeId ib = index.index_of(b);
  EXPECT_EQ(index.index_of(a2), ia);
  // a-block -> b-block because a1 -> b exists, even though a2 has no b child.
  const auto& children = index.children(ia);
  EXPECT_NE(std::find(children.begin(), children.end(), ib), children.end());
}

TEST(IndexGraphTest, SplitOffMovesMembersAndMapping) {
  DataGraph g;
  NodeId a1 = g.AddNode("a");
  NodeId a2 = g.AddNode("a");
  NodeId a3 = g.AddNode("a");
  g.AddEdge(g.root(), a1);
  g.AddEdge(g.root(), a2);
  g.AddEdge(g.root(), a3);
  IndexGraph index = LabelSplitIndex(&g);
  IndexNodeId ia = index.index_of(a1);
  IndexNodeId fresh = index.SplitOff(ia, {a2, a3});
  EXPECT_EQ(index.extent(ia), (std::vector<NodeId>{a1}));
  EXPECT_EQ(index.extent(fresh), (std::vector<NodeId>{a2, a3}));
  EXPECT_EQ(index.index_of(a2), fresh);
  EXPECT_EQ(index.k(fresh), index.k(ia));
  EXPECT_EQ(index.label(fresh), index.label(ia));

  index.RecomputeEdgesLocal({ia, fresh});
  std::string error;
  EXPECT_TRUE(index.ValidatePartition(&error)) << error;
  EXPECT_TRUE(index.ValidateEdges(&error)) << error;
}

TEST(IndexGraphTest, RecomputeEdgesLocalMatchesFullRecompute) {
  Rng rng(99);
  DataGraph g = testing_util::RandomGraph(120, 4, 25, &rng);
  Partition p = ComputeKBisimulation(g, 2);
  std::vector<int> ks(static_cast<size_t>(p.num_blocks), 2);
  IndexGraph index =
      IndexGraph::FromPartition(&g, p.block_of, p.num_blocks, ks);

  // Split a few nodes and fix edges locally; the result must match a global
  // recompute exactly (ValidateEdges derives the ground truth itself).
  for (int i = 0; i < 5; ++i) {
    IndexNodeId victim = -1;
    for (IndexNodeId n = 0; n < index.NumIndexNodes(); ++n) {
      if (index.extent(n).size() >= 2) {
        victim = n;
        break;
      }
    }
    if (victim == -1) break;
    std::vector<NodeId> half(index.extent(victim).begin(),
                             index.extent(victim).begin() +
                                 index.extent(victim).size() / 2);
    IndexNodeId fresh = index.SplitOff(victim, half);
    index.RecomputeEdgesLocal({victim, fresh});
    std::string error;
    ASSERT_TRUE(index.ValidateEdges(&error)) << error;
    ASSERT_TRUE(index.ValidatePartition(&error)) << error;
  }
}

TEST(IndexGraphTest, AddIndexEdgeDeduplicates) {
  DataGraph g;
  NodeId a = g.AddNode("a");
  NodeId b = g.AddNode("b");
  g.AddEdge(g.root(), a);
  g.AddEdge(g.root(), b);
  IndexGraph index = LabelSplitIndex(&g);
  IndexNodeId ia = index.index_of(a);
  IndexNodeId ib = index.index_of(b);
  int64_t before = index.NumIndexEdges();
  index.AddIndexEdge(ia, ib);
  EXPECT_EQ(index.NumIndexEdges(), before + 1);
  index.AddIndexEdge(ia, ib);
  EXPECT_EQ(index.NumIndexEdges(), before + 1);
}

TEST(IndexGraphTest, DkConstraintValidator) {
  DataGraph g;
  NodeId a = g.AddNode("a");
  NodeId b = g.AddNode("b");
  g.AddEdge(g.root(), a);
  g.AddEdge(a, b);
  IndexGraph index = LabelSplitIndex(&g);
  std::string error;
  EXPECT_TRUE(index.ValidateDkConstraint(&error)) << error;  // all k = 0
  index.set_k(index.index_of(b), 2);  // parent a has k=0 < 2-1
  EXPECT_FALSE(index.ValidateDkConstraint(&error));
  index.set_k(index.index_of(a), 1);
  EXPECT_TRUE(index.ValidateDkConstraint(&error)) << error;
}

TEST(IndexGraphTest, NodesWithLabelAndDot) {
  DataGraph g = testing_util::BuildMovieGraph();
  IndexGraph index = LabelSplitIndex(&g);
  LabelId movie = g.labels().Find("movie");
  auto nodes = index.NodesWithLabel(movie);
  ASSERT_EQ(nodes.size(), 1u);  // label split: one block per label
  EXPECT_EQ(index.label(nodes[0]), movie);
  EXPECT_NE(index.ToDot().find("movie"), std::string::npos);
}

}  // namespace
}  // namespace dki
