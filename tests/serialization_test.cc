#include "io/serialization.h"

#include <gtest/gtest.h>

#include <sstream>

#include "common/random.h"
#include "datagen/xmark_generator.h"
#include "query/evaluator.h"
#include "query/load_analyzer.h"
#include "tests/test_util.h"

namespace dki {
namespace {

TEST(SerializationTest, GraphRoundTrip) {
  Rng rng(501);
  DataGraph g = testing_util::RandomGraph(200, 5, 40, &rng);
  std::ostringstream out;
  ASSERT_TRUE(SaveGraph(g, &out));

  std::istringstream in(out.str());
  DataGraph loaded;
  std::string error;
  ASSERT_TRUE(LoadGraph(&in, &loaded, &error)) << error;
  ASSERT_EQ(loaded.NumNodes(), g.NumNodes());
  ASSERT_EQ(loaded.NumEdges(), g.NumEdges());
  for (NodeId n = 0; n < g.NumNodes(); ++n) {
    EXPECT_EQ(loaded.label_name(n), g.label_name(n));
    EXPECT_EQ(loaded.children(n), g.children(n));
  }
}

TEST(SerializationTest, RoundTripsLabelsWithWhitespace) {
  DataGraph g;
  NodeId a = g.AddNode("movie title");
  NodeId b = g.AddNode("  padded  ");
  NodeId c = g.AddNode("tab\there");
  NodeId d = g.AddNode("caf\xc3\xa9");  // UTF-8 bytes pass through verbatim
  g.AddEdge(g.root(), a);
  g.AddEdge(a, b);
  g.AddEdge(a, c);
  g.AddEdge(c, d);

  std::ostringstream out;
  ASSERT_TRUE(SaveGraph(g, &out));
  std::istringstream in(out.str());
  DataGraph loaded;
  std::string error;
  ASSERT_TRUE(LoadGraph(&in, &loaded, &error)) << error;
  ASSERT_EQ(loaded.NumNodes(), g.NumNodes());
  for (NodeId n = 0; n < g.NumNodes(); ++n) {
    EXPECT_EQ(loaded.label_name(n), g.label_name(n));
    EXPECT_EQ(loaded.children(n), g.children(n));
  }
}

TEST(SerializationTest, LabelNameRoundTripProperty) {
  Rng rng(509);
  const std::string pieces[] = {"a",  "b c",  " d", "e ",
                                "\t", "\xc2\xb5", "x\xe2\x80\xa6", "f  g"};
  constexpr int kNumPieces = 8;
  for (int trial = 0; trial < 10; ++trial) {
    DataGraph g;
    int num_nodes = static_cast<int>(rng.UniformInt(3, 12));
    for (int i = 0; i < num_nodes; ++i) {
      std::string name;
      int len = static_cast<int>(rng.UniformInt(1, 3));
      for (int j = 0; j < len; ++j) {
        name += pieces[static_cast<size_t>(
            rng.UniformInt(0, kNumPieces - 1))];
      }
      NodeId n = g.AddNode(name);
      g.AddEdge(static_cast<NodeId>(rng.UniformInt(0, n - 1)), n);
    }

    std::ostringstream out;
    ASSERT_TRUE(SaveGraph(g, &out));
    std::istringstream in(out.str());
    DataGraph loaded;
    std::string error;
    ASSERT_TRUE(LoadGraph(&in, &loaded, &error)) << error;
    ASSERT_EQ(loaded.NumNodes(), g.NumNodes());
    ASSERT_EQ(loaded.NumEdges(), g.NumEdges());
    for (NodeId n = 0; n < g.NumNodes(); ++n) {
      EXPECT_EQ(loaded.label_name(n), g.label_name(n)) << "trial " << trial;
      EXPECT_EQ(loaded.children(n), g.children(n)) << "trial " << trial;
    }
  }
}

TEST(SerializationTest, SaveRejectsNewlineLabels) {
  DataGraph g;
  NodeId a = g.AddNode("bad\nlabel");
  g.AddEdge(g.root(), a);
  std::ostringstream out;
  EXPECT_FALSE(SaveGraph(g, &out));

  DataGraph g2;
  NodeId b = g2.AddNode("bad\rlabel");
  g2.AddEdge(g2.root(), b);
  std::ostringstream out2;
  EXPECT_FALSE(SaveGraph(g2, &out2));
}

TEST(SerializationTest, IndexRoundTrip) {
  Rng rng(503);
  DataGraph g = testing_util::RandomGraph(150, 4, 25, &rng);
  LabelRequirements reqs;
  reqs[2] = 2;
  reqs[3] = 3;
  DkIndex dk = DkIndex::Build(&g, reqs);

  std::ostringstream out;
  ASSERT_TRUE(SaveIndex(dk.index(), &out));
  std::istringstream in(out.str());
  IndexGraph loaded(&g);
  std::string error;
  ASSERT_TRUE(LoadIndex(&in, &g, &loaded, &error)) << error;

  ASSERT_EQ(loaded.NumIndexNodes(), dk.index().NumIndexNodes());
  for (NodeId n = 0; n < g.NumNodes(); ++n) {
    EXPECT_EQ(loaded.index_of(n), dk.index().index_of(n));
  }
  for (IndexNodeId i = 0; i < loaded.NumIndexNodes(); ++i) {
    EXPECT_EQ(loaded.k(i), dk.index().k(i));
    EXPECT_EQ(loaded.label(i), dk.index().label(i));
  }
  EXPECT_TRUE(loaded.ValidateEdges(&error)) << error;  // adjacency rederived
}

TEST(SerializationTest, DkIndexRoundTripPreservesBehavior) {
  XmarkOptions options;
  options.scale = 0.1;
  DataGraph g = GenerateXmarkGraph(options).graph;
  Rng rng(505);
  std::vector<std::string> queries;
  for (int i = 0; i < 10; ++i) {
    queries.push_back(testing_util::RandomChainQuery(
        g, static_cast<int>(rng.UniformInt(2, 4)), &rng));
  }
  LabelRequirements reqs =
      MineRequirementsFromText(queries, g.labels(), nullptr);
  DkIndex dk = DkIndex::Build(&g, reqs);

  std::ostringstream out;
  ASSERT_TRUE(SaveDkIndex(dk, &out));
  std::istringstream in(out.str());
  DataGraph loaded_graph;
  std::string error;
  auto loaded = LoadDkIndex(&in, &loaded_graph, &error);
  ASSERT_TRUE(loaded.has_value()) << error;

  // Identical answers and identical tuning semantics after the round trip.
  for (const std::string& text : queries) {
    PathExpression q = testing_util::MustParse(text, loaded_graph.labels());
    PathExpression q0 = testing_util::MustParse(text, g.labels());
    EXPECT_EQ(EvaluateOnIndex(loaded->index(), q),
              EvaluateOnIndex(dk.index(), q0))
        << text;
  }
  for (LabelId l = 0; l < g.labels().size(); ++l) {
    EXPECT_EQ(loaded->effective_requirement(l), dk.effective_requirement(l));
  }
  // The loaded index keeps working as a live index: updates still apply.
  auto edges = loaded_graph.NodesWithLabel(
      loaded_graph.labels().Find("person"));
  ASSERT_FALSE(edges.empty());
  loaded->AddEdge(edges.front(), edges.back());
  std::string invariant;
  EXPECT_TRUE(loaded->index().ValidateDkConstraint(&invariant)) << invariant;
}

TEST(SerializationTest, FileRoundTrip) {
  Rng rng(507);
  DataGraph g = testing_util::RandomGraph(80, 3, 10, &rng);
  DkIndex dk = DkIndex::Build(&g, {{2, 2}});
  const std::string path = "/tmp/dki_serialization_test.dki";
  ASSERT_TRUE(SaveDkIndexToFile(dk, path));
  DataGraph loaded_graph;
  std::string error;
  auto loaded = LoadDkIndexFromFile(path, &loaded_graph, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_EQ(loaded->index().NumIndexNodes(), dk.index().NumIndexNodes());
}

TEST(SerializationTest, RejectsCorruptInput) {
  struct Case {
    const char* name;
    const char* data;
  };
  const Case cases[] = {
      {"empty", ""},
      {"bad magic", "dki-blob v1\nlabels 2\nROOT\nVALUE\n"},
      {"bad version", "dki-graph v2\n"},
      {"missing labels", "dki-graph v1\nnodes 1\n0\nedges 0\n"},
      {"root not ROOT",
       "dki-graph v1\nlabels 3\nROOT\nVALUE\na\nnodes 1\n2\nedges 0\n"},
      {"edge out of range",
       "dki-graph v1\nlabels 2\nROOT\nVALUE\nnodes 1\n0\nedges 1\n0 5\n"},
      {"truncated edges",
       "dki-graph v1\nlabels 2\nROOT\nVALUE\nnodes 1\n0\nedges 3\n"},
  };
  for (const Case& c : cases) {
    std::istringstream in(c.data);
    DataGraph g;
    std::string error;
    EXPECT_FALSE(LoadGraph(&in, &g, &error)) << c.name;
    EXPECT_FALSE(error.empty()) << c.name;
  }
}

// Crash-safety sweep: a load from a file cut off at ANY byte boundary (a
// torn write, a partial copy) must either fail with a non-empty error or —
// when the cut only loses trailing bytes the format does not need, like the
// final newline — produce a structure identical to the original. It must
// never crash or yield a half-loaded hybrid.
TEST(SerializationTest, GraphPrefixTruncationSweep) {
  Rng rng(511);
  DataGraph g = testing_util::RandomGraph(60, 4, 10, &rng);
  std::ostringstream out;
  ASSERT_TRUE(SaveGraph(g, &out));
  const std::string full = out.str();

  for (size_t cut = 0; cut < full.size(); ++cut) {
    std::istringstream in(full.substr(0, cut));
    DataGraph loaded;
    std::string error;
    if (!LoadGraph(&in, &loaded, &error)) {
      EXPECT_FALSE(error.empty()) << "cut=" << cut;
      continue;
    }
    ASSERT_EQ(loaded.NumNodes(), g.NumNodes()) << "cut=" << cut;
    ASSERT_EQ(loaded.NumEdges(), g.NumEdges()) << "cut=" << cut;
    for (NodeId n = 0; n < g.NumNodes(); ++n) {
      ASSERT_EQ(loaded.label_name(n), g.label_name(n)) << "cut=" << cut;
      ASSERT_EQ(loaded.children(n), g.children(n)) << "cut=" << cut;
    }
  }
}

TEST(SerializationTest, DkIndexPrefixTruncationSweep) {
  Rng rng(513);
  DataGraph g = testing_util::RandomGraph(50, 3, 8, &rng);
  DkIndex dk = DkIndex::Build(&g, {{2, 2}});
  std::ostringstream out;
  ASSERT_TRUE(SaveDkIndex(dk, &out));
  const std::string full = out.str();

  for (size_t cut = 0; cut < full.size(); ++cut) {
    std::istringstream in(full.substr(0, cut));
    DataGraph loaded_graph;
    std::string error;
    auto loaded = LoadDkIndex(&in, &loaded_graph, &error);
    if (!loaded.has_value()) {
      EXPECT_FALSE(error.empty()) << "cut=" << cut;
      continue;
    }
    ASSERT_EQ(loaded_graph.NumNodes(), g.NumNodes()) << "cut=" << cut;
    ASSERT_EQ(loaded->index().NumIndexNodes(), dk.index().NumIndexNodes())
        << "cut=" << cut;
    for (NodeId n = 0; n < g.NumNodes(); ++n) {
      ASSERT_EQ(loaded->index().index_of(n), dk.index().index_of(n))
          << "cut=" << cut;
    }
  }
}

// Regression: any single-byte change to the header line is fatal, never
// silently tolerated.
TEST(SerializationTest, GraphHeaderByteFlipsAreRejected) {
  DataGraph g = testing_util::BuildMovieGraph();
  std::ostringstream out;
  ASSERT_TRUE(SaveGraph(g, &out));
  std::string full = out.str();
  const size_t header_len = full.find('\n');
  ASSERT_NE(header_len, std::string::npos);

  for (size_t i = 0; i < header_len; ++i) {
    std::string bad = full;
    bad[i] ^= 0x04;  // stays printable for every header character
    std::istringstream in(bad);
    DataGraph loaded;
    std::string error;
    EXPECT_FALSE(LoadGraph(&in, &loaded, &error)) << "byte " << i;
    EXPECT_FALSE(error.empty()) << "byte " << i;
  }
}

// Byte flips anywhere in a saved D(k)-index must never crash the loader or
// produce an index that fails its own structural invariants: each flip
// either fails the load with an error, or yields an index whose extents
// still partition the graph (a flip inside a label name, say, is
// indistinguishable from a different valid file — the checkpoint layer's
// CRC exists precisely because this format cannot detect those).
TEST(SerializationTest, DkIndexByteFlipSweepNeverCrashesOrHalfLoads) {
  Rng rng(515);
  DataGraph g = testing_util::RandomGraph(40, 3, 6, &rng);
  DkIndex dk = DkIndex::Build(&g, {{2, 2}});
  std::ostringstream out;
  ASSERT_TRUE(SaveDkIndex(dk, &out));
  const std::string full = out.str();

  // The extent section starts at the index header; flips there attack the
  // per-extent "<label> <k> <size> <members...>" lines directly.
  const size_t index_start = full.find("dki-index v1");
  ASSERT_NE(index_start, std::string::npos);

  for (size_t i = 0; i < full.size(); ++i) {
    std::string bad = full;
    bad[i] ^= 0x11;
    std::istringstream in(bad);
    DataGraph loaded_graph;
    std::string error;
    auto loaded = LoadDkIndex(&in, &loaded_graph, &error);
    if (!loaded.has_value()) {
      EXPECT_FALSE(error.empty()) << "byte " << i;
      continue;
    }
    std::string invariant;
    EXPECT_TRUE(loaded->index().ValidatePartition(&invariant))
        << "byte " << i << ": " << invariant;
  }
}

TEST(SerializationTest, RejectsCorruptIndex) {
  DataGraph g;
  NodeId a = g.AddNode("a");
  (void)a;
  const char* bad_cases[] = {
      "dki-index v1\nindex_nodes 1\n",                    // truncated
      "dki-index v1\nindex_nodes 1\n0 0 1 5\n",           // member range
      "dki-index v1\nindex_nodes 1\n0 0 2 0 0\n",         // duplicate member
      "dki-index v1\nindex_nodes 1\n2 0 2 0 1\n",         // label mismatch
      "dki-index v1\nindex_nodes 1\n0 0 1 0\n",           // node 1 missing
  };
  for (const char* data : bad_cases) {
    std::istringstream in(data);
    IndexGraph index(&g);
    std::string error;
    EXPECT_FALSE(LoadIndex(&in, &g, &index, &error)) << data;
  }
}

}  // namespace
}  // namespace dki
