// Edge-case and robustness coverage across modules: degenerate graphs,
// truncation fuzzing of the XML parser, Algorithm 4 bound properties, cost
// model accounting, and the empty/extreme configurations the main suites
// don't reach.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <string>

#include "common/random.h"
#include "common/string_util.h"
#include "datagen/xmark_generator.h"
#include "index/ak_index.h"
#include "index/dk_index.h"
#include "index/fb_index.h"
#include "index/one_index.h"
#include "query/evaluator.h"
#include "query/load_analyzer.h"
#include "query/workload.h"
#include "tests/test_util.h"
#include "xml/xml_parser.h"
#include "xml/xml_writer.h"

namespace dki {
namespace {

TEST(EdgeCaseTest, IndexFamilyOnRootOnlyGraph) {
  DataGraph g;  // just ROOT
  IndexGraph one = OneIndex::Build(&g);
  EXPECT_EQ(one.NumIndexNodes(), 1);
  AkIndex a2 = AkIndex::Build(&g, 2);
  EXPECT_EQ(a2.index().NumIndexNodes(), 1);
  DkIndex dk = DkIndex::Build(&g, {});
  EXPECT_EQ(dk.index().NumIndexNodes(), 1);
  IndexGraph fb = FbIndex::Build(&g);
  EXPECT_EQ(fb.NumIndexNodes(), 1);

  PathExpression q = testing_util::MustParse("ROOT", g.labels());
  EXPECT_EQ(EvaluateOnIndex(one, q), (std::vector<NodeId>{0}));
}

TEST(EdgeCaseTest, SingleChainGraph) {
  DataGraph g;
  NodeId prev = g.root();
  for (int i = 0; i < 10; ++i) {
    NodeId n = g.AddNode("x");
    g.AddEdge(prev, n);
    prev = n;
  }
  // All x nodes have distinct incoming path lengths: full bisimulation
  // separates them all.
  IndexGraph one = OneIndex::Build(&g);
  EXPECT_EQ(one.NumIndexNodes(), 11);
  // A(2) distinguishes only 3 levels of x (depth 1, 2, 3+).
  AkIndex a2 = AkIndex::Build(&g, 2);
  EXPECT_EQ(a2.index().NumIndexNodes(), 4);

  // D(k) with req(x)=2 equals A(2) here.
  LabelRequirements reqs;
  reqs[g.labels().Find("x")] = 2;
  DkIndex dk = DkIndex::Build(&g, reqs);
  EXPECT_EQ(dk.index().NumIndexNodes(), 4);
}

TEST(EdgeCaseTest, ParallelEdgesAndSelfLoops) {
  DataGraph g;
  NodeId a = g.AddNode("a");
  g.AddEdge(g.root(), a);
  g.AddEdge(a, a);  // self loop
  DkIndex dk = DkIndex::Build(&g, {{2, 3}});
  std::string error;
  EXPECT_TRUE(dk.index().ValidatePartition(&error)) << error;
  EXPECT_TRUE(dk.index().ValidateDkConstraint(&error)) << error;
  PathExpression q = testing_util::MustParse("a.a.a.a", g.labels());
  EXPECT_EQ(EvaluateOnIndex(dk.index(), q), (std::vector<NodeId>{a}));
}

TEST(EdgeCaseTest, XmlTruncationFuzz) {
  // Every prefix of a valid document must either parse or fail cleanly —
  // never crash or hang.
  XmarkOptions options;
  options.scale = 0.05;
  std::string xml = WriteXml(GenerateXmarkDocument(options));
  ASSERT_GT(xml.size(), 2000u);
  for (size_t len = 0; len < xml.size(); len += 97) {
    XmlDocument doc;
    std::string error;
    bool ok = ParseXml(xml.substr(0, len), &doc, &error);
    if (!ok) {
      EXPECT_FALSE(error.empty()) << "at length " << len;
    }
  }
  // And mutated bytes.
  Rng rng(31337);
  for (int i = 0; i < 200; ++i) {
    std::string mutated = xml.substr(0, 4000);
    size_t pos = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(mutated.size()) - 1));
    mutated[pos] = static_cast<char>(rng.UniformInt(32, 126));
    XmlDocument doc;
    std::string error;
    ParseXml(mutated, &doc, &error);  // must simply not crash
  }
}

TEST(EdgeCaseTest, UpdateLocalSimilarityRespectsItsBounds) {
  // Algorithm 4's result is always within [0, min(k_U + 1, k_V)].
  Rng rng(733);
  for (int trial = 0; trial < 5; ++trial) {
    DataGraph g = testing_util::RandomGraph(80, 4, 15, &rng);
    LabelRequirements reqs;
    reqs[static_cast<LabelId>(rng.UniformInt(2, g.labels().size() - 1))] = 4;
    DkIndex dk = DkIndex::Build(&g, reqs);
    const IndexGraph& index = dk.index();
    for (int i = 0; i < 40; ++i) {
      IndexNodeId u = static_cast<IndexNodeId>(
          rng.UniformInt(0, index.NumIndexNodes() - 1));
      IndexNodeId v = static_cast<IndexNodeId>(
          rng.UniformInt(0, index.NumIndexNodes() - 1));
      int k_n = dk.UpdateLocalSimilarity(u, v, nullptr);
      EXPECT_GE(k_n, 0);
      EXPECT_LE(k_n, std::min(index.k(u) + 1, index.k(v)));
    }
  }
}

TEST(EdgeCaseTest, ExistingParentEdgeKeepsFullSimilarity) {
  // Adding a data edge whose index edge already exists (and whose label
  // paths are thus already accounted for) must not demote the target below
  // the Algorithm 4 upbound.
  DataGraph g;
  NodeId a1 = g.AddNode("a");
  NodeId a2 = g.AddNode("a");
  NodeId b = g.AddNode("b");
  g.AddEdge(g.root(), a1);
  g.AddEdge(g.root(), a2);
  g.AddEdge(a1, b);
  LabelRequirements reqs;
  reqs[g.labels().Find("b")] = 2;
  DkIndex dk = DkIndex::Build(&g, reqs);
  IndexNodeId vb = dk.index().index_of(b);
  int k_before = dk.index().k(vb);
  ASSERT_EQ(k_before, 2);
  // a2 -> b: the a-block -> b-block index edge already exists; label paths
  // through it (a.b, ROOT.a.b) match b already.
  auto stats = dk.AddEdge(a2, b);
  EXPECT_EQ(stats.new_local_similarity, 2);
  EXPECT_EQ(dk.index().k(vb), 2);
}

TEST(EdgeCaseTest, CostModelAccounting) {
  DataGraph g = testing_util::BuildMovieGraph();
  DataGraph g2 = g;
  AkIndex a0 = AkIndex::Build(&g2, 0);
  AkIndex a4 = AkIndex::Build(&g, 4);
  PathExpression q =
      testing_util::MustParse("director.movie.title", g.labels());

  EvalStats cheap, expensive;
  EvaluateOnIndex(a4.index(), q, &cheap);
  EvaluateOnIndex(a0.index(), q, &expensive);
  // The sound index pays no validation; the label-split index pays a lot.
  EXPECT_EQ(cheap.data_nodes_visited, 0);
  EXPECT_GT(expensive.data_nodes_visited, 0);
  EXPECT_GT(expensive.cost(), 0);
  EXPECT_EQ(cheap.cost(), cheap.index_nodes_visited);
  // Accumulation adds up.
  EvalStats total;
  EvaluateOnIndex(a0.index(), q, &total);
  EvaluateOnIndex(a0.index(), q, &total);
  EXPECT_EQ(total.cost(), 2 * expensive.cost());
}

TEST(EdgeCaseTest, WorkloadOnTinyGraphs) {
  DataGraph g;
  NodeId a = g.AddNode("a");
  g.AddEdge(g.root(), a);
  Rng rng(3);
  WorkloadOptions options;
  options.num_queries = 5;
  Workload w = GenerateWorkload(g, options, &rng);
  // A one-element document cannot produce 2..5-label paths below the root;
  // the generator must cope (possibly returning fewer/no queries).
  for (const std::string& text : w.queries) {
    PathExpression q = testing_util::MustParse(text, g.labels());
    EXPECT_FALSE(EvaluateOnDataGraph(g, q).empty());
  }
}

TEST(EdgeCaseTest, PromoteToInfinityEqualsOneIndexRefinement) {
  // Promoting far beyond the graph's diameter refines every promoted label
  // to its full-bisimulation classes (never finer than the 1-index allows
  // for that label's nodes).
  Rng rng(739);
  DataGraph g = testing_util::RandomGraph(60, 3, 10, &rng);
  DkIndex dk = DkIndex::Build(&g, {});
  LabelId target = 2;
  dk.PromoteLabel(target, 30);
  IndexGraph one = OneIndex::Build(&g);
  // Every promoted extent sits inside a single 1-index class.
  for (IndexNodeId i = 0; i < dk.index().NumIndexNodes(); ++i) {
    if (dk.index().label(i) != target) continue;
    std::set<IndexNodeId> classes;
    for (NodeId n : dk.index().extent(i)) classes.insert(one.index_of(n));
    EXPECT_EQ(classes.size(), 1u);
  }
}

TEST(EdgeCaseTest, QueriesOverValueNodes) {
  DataGraph g = testing_util::BuildMovieGraph();
  PathExpression q = testing_util::MustParse("title.VALUE", g.labels());
  auto result = EvaluateOnDataGraph(g, q);
  EXPECT_EQ(result.size(), 4u);  // one VALUE per title
  DkIndex dk = DkIndex::Build(&g, {{LabelTable::kValueLabel, 1}});
  EXPECT_EQ(EvaluateOnIndex(dk.index(), q), result);
}

TEST(EdgeCaseTest, MineRequirementsEmptyWorkload) {
  LabelTable labels;
  EXPECT_TRUE(MineRequirements({}, labels).empty());
}

// The strict integer parser that replaced the blind std::atoi calls
// (DKI_NUM_THREADS, dkquery's a<k> mode): every malformed or overflowing
// input must be rejected, not silently read as 0 or truncated.
TEST(EdgeCaseTest, ParseInt64AcceptsExactlyWellFormedIntegers) {
  EXPECT_EQ(ParseInt64("0"), 0);
  EXPECT_EQ(ParseInt64("42"), 42);
  EXPECT_EQ(ParseInt64("+7"), 7);
  EXPECT_EQ(ParseInt64("-13"), -13);
  EXPECT_EQ(ParseInt64("007"), 7);
  EXPECT_EQ(ParseInt64("9223372036854775807"),
            std::numeric_limits<int64_t>::max());
  EXPECT_EQ(ParseInt64("-9223372036854775808"),
            std::numeric_limits<int64_t>::min());

  for (const char* bad :
       {"", "+", "-", " 4", "4 ", "4x", "x4", "1.5", "0x10", "1e3", "--4",
        "+-4", "4\n", "9223372036854775808", "+9223372036854775808",
        "-9223372036854775809", "99999999999999999999"}) {
    EXPECT_FALSE(ParseInt64(bad).has_value()) << "'" << bad << "'";
  }
}

TEST(EdgeCaseTest, ParseInt64InRangeClampsNothing) {
  // In-range passes through; out-of-range is rejected, never clamped.
  EXPECT_EQ(ParseInt64InRange("5", 0, 9), 5);
  EXPECT_EQ(ParseInt64InRange("0", 0, 9), 0);
  EXPECT_EQ(ParseInt64InRange("9", 0, 9), 9);
  EXPECT_FALSE(ParseInt64InRange("10", 0, 9).has_value());
  EXPECT_FALSE(ParseInt64InRange("-1", 0, 9).has_value());
  EXPECT_FALSE(ParseInt64InRange("abc", 0, 9).has_value());
}

}  // namespace
}  // namespace dki
