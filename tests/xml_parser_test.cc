#include "xml/xml_parser.h"

#include <gtest/gtest.h>

#include "xml/xml_writer.h"

namespace dki {
namespace {

TEST(XmlParserTest, MinimalDocument) {
  XmlDocument doc;
  std::string error;
  ASSERT_TRUE(ParseXml("<root/>", &doc, &error)) << error;
  EXPECT_EQ(doc.root->tag, "root");
  EXPECT_TRUE(doc.root->children.empty());
}

TEST(XmlParserTest, NestedElementsAndText) {
  XmlDocument doc;
  std::string error;
  ASSERT_TRUE(ParseXml("<a><b>hello</b><c><d/></c></a>", &doc, &error))
      << error;
  ASSERT_EQ(doc.root->children.size(), 2u);
  EXPECT_EQ(doc.root->children[0]->tag, "b");
  EXPECT_EQ(doc.root->children[0]->text, "hello");
  EXPECT_EQ(doc.root->children[1]->children[0]->tag, "d");
  EXPECT_EQ(doc.root->CountElements(), 4);
}

TEST(XmlParserTest, Attributes) {
  XmlDocument doc;
  std::string error;
  ASSERT_TRUE(ParseXml(
      "<item id=\"item0\" category='cat &amp; dog'><name>x</name></item>",
      &doc, &error))
      << error;
  ASSERT_EQ(doc.root->attributes.size(), 2u);
  EXPECT_EQ(doc.root->attributes[0].first, "id");
  EXPECT_EQ(doc.root->attributes[0].second, "item0");
  EXPECT_EQ(doc.root->attributes[1].second, "cat & dog");
  EXPECT_EQ(*doc.root->FindAttribute("id"), "item0");
  EXPECT_EQ(doc.root->FindAttribute("missing"), nullptr);
}

TEST(XmlParserTest, PrologCommentsDoctypePis) {
  XmlDocument doc;
  std::string error;
  const char* xml =
      "<?xml version=\"1.0\"?>\n"
      "<!-- a comment -->\n"
      "<!DOCTYPE site SYSTEM \"auction.dtd\" [ <!ENTITY x \"y\"> ]>\n"
      "<?pi data?>\n"
      "<site><!-- inner --><a/><?inner-pi?></site>\n";
  ASSERT_TRUE(ParseXml(xml, &doc, &error)) << error;
  EXPECT_EQ(doc.root->tag, "site");
  ASSERT_EQ(doc.root->children.size(), 1u);
}

TEST(XmlParserTest, CdataSection) {
  XmlDocument doc;
  std::string error;
  ASSERT_TRUE(
      ParseXml("<a><![CDATA[raw <unparsed> & data]]></a>", &doc, &error))
      << error;
  EXPECT_EQ(doc.root->text, "raw <unparsed> & data");
}

TEST(XmlParserTest, EntityDecoding) {
  EXPECT_EQ(DecodeEntities("a &lt; b &amp;&amp; c &gt; d"), "a < b && c > d");
  EXPECT_EQ(DecodeEntities("&quot;q&quot; &apos;a&apos;"), "\"q\" 'a'");
  EXPECT_EQ(DecodeEntities("&#65;&#x42;"), "AB");
  EXPECT_EQ(DecodeEntities("&#233;"), "\xC3\xA9");  // é as UTF-8
  EXPECT_EQ(DecodeEntities("&unknown; &"), "&unknown; &");
}

TEST(XmlParserTest, EscapeRoundTrip) {
  std::string raw = "a<b>&\"c'";
  EXPECT_EQ(DecodeEntities(EscapeXml(raw)), raw);
}

TEST(XmlParserTest, ErrorMismatchedTags) {
  XmlDocument doc;
  std::string error;
  EXPECT_FALSE(ParseXml("<a><b></a></b>", &doc, &error));
  EXPECT_NE(error.find("mismatched"), std::string::npos);
}

TEST(XmlParserTest, ErrorUnterminated) {
  XmlDocument doc;
  std::string error;
  EXPECT_FALSE(ParseXml("<a><b>", &doc, &error));
  EXPECT_FALSE(error.empty());
}

TEST(XmlParserTest, ErrorContentAfterRoot) {
  XmlDocument doc;
  std::string error;
  EXPECT_FALSE(ParseXml("<a/><b/>", &doc, &error));
  EXPECT_NE(error.find("after root"), std::string::npos);
}

TEST(XmlParserTest, ErrorGarbage) {
  XmlDocument doc;
  std::string error;
  EXPECT_FALSE(ParseXml("not xml at all", &doc, &error));
}

TEST(XmlWriterTest, RoundTripPreservesStructure) {
  const char* xml =
      "<site><item id=\"i0\"><name>lamp &amp; shade</name></item>"
      "<person id=\"p0\" age='3'/></site>";
  XmlDocument doc;
  std::string error;
  ASSERT_TRUE(ParseXml(xml, &doc, &error)) << error;

  std::string serialized = WriteXml(doc);
  XmlDocument doc2;
  ASSERT_TRUE(ParseXml(serialized, &doc2, &error)) << error << "\n"
                                                   << serialized;
  EXPECT_EQ(doc2.root->CountElements(), doc.root->CountElements());
  EXPECT_EQ(doc2.root->children[0]->children[0]->text, "lamp & shade");
  EXPECT_EQ(*doc2.root->children[1]->FindAttribute("age"), "3");
}

TEST(XmlWriterTest, CompactMode) {
  XmlDocument doc;
  std::string error;
  ASSERT_TRUE(ParseXml("<a><b/></a>", &doc, &error));
  XmlWriteOptions options;
  options.pretty = false;
  options.prolog = false;
  EXPECT_EQ(WriteXml(doc, options), "<a><b/></a>\n");
}

}  // namespace
}  // namespace dki
