#include "index/partition.h"

#include <gtest/gtest.h>

#include <set>
#include <unordered_map>

#include "common/random.h"
#include "graph/graph_algos.h"
#include "tests/test_util.h"

namespace dki {
namespace {

// Reference implementation of k-bisimilarity, straight from Definition 2:
// a boolean matrix per level. O(k * n^2 * deg^2) — small graphs only.
std::vector<std::vector<bool>> ReferenceKBisim(const DataGraph& g, int k) {
  const size_t n = static_cast<size_t>(g.NumNodes());
  std::vector<std::vector<bool>> eq(n, std::vector<bool>(n, false));
  for (size_t u = 0; u < n; ++u) {
    for (size_t v = 0; v < n; ++v) {
      eq[u][v] = g.label(static_cast<NodeId>(u)) ==
                 g.label(static_cast<NodeId>(v));
    }
  }
  for (int level = 1; level <= k; ++level) {
    std::vector<std::vector<bool>> next(n, std::vector<bool>(n, false));
    for (size_t u = 0; u < n; ++u) {
      for (size_t v = 0; v < n; ++v) {
        if (!eq[u][v]) continue;
        auto covered = [&](NodeId x, const std::vector<NodeId>& others) {
          for (NodeId y : others) {
            if (eq[static_cast<size_t>(x)][static_cast<size_t>(y)]) {
              return true;
            }
          }
          return others.empty() ? false : false;
        };
        bool ok = true;
        for (NodeId up : g.parents(static_cast<NodeId>(u))) {
          if (!covered(up, g.parents(static_cast<NodeId>(v)))) {
            ok = false;
            break;
          }
        }
        if (ok) {
          for (NodeId vp : g.parents(static_cast<NodeId>(v))) {
            if (!covered(vp, g.parents(static_cast<NodeId>(u)))) {
              ok = false;
              break;
            }
          }
        }
        next[u][v] = ok;
      }
    }
    eq = std::move(next);
  }
  return eq;
}

void ExpectPartitionMatchesRelation(
    const DataGraph& g, const Partition& p,
    const std::vector<std::vector<bool>>& eq) {
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    for (NodeId v = 0; v < g.NumNodes(); ++v) {
      bool same_block = p.block_of[static_cast<size_t>(u)] ==
                        p.block_of[static_cast<size_t>(v)];
      EXPECT_EQ(same_block, eq[static_cast<size_t>(u)][static_cast<size_t>(v)])
          << "nodes " << u << " and " << v;
    }
  }
}

TEST(PartitionTest, LabelSplitGroupsByLabel) {
  DataGraph g = testing_util::BuildMovieGraph();
  Partition p = LabelSplit(g);
  EXPECT_EQ(p.num_blocks, g.labels().size());  // every label occurs
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    EXPECT_EQ(p.block_label[static_cast<size_t>(
                  p.block_of[static_cast<size_t>(u)])],
              g.label(u));
  }
}

TEST(PartitionTest, KBisimulationMatchesReferenceOnMovieGraph) {
  DataGraph g = testing_util::BuildMovieGraph();
  for (int k = 0; k <= 4; ++k) {
    Partition p = ComputeKBisimulation(g, k);
    ExpectPartitionMatchesRelation(g, p, ReferenceKBisim(g, k));
  }
}

TEST(PartitionTest, KBisimulationMatchesReferenceOnRandomGraphs) {
  Rng rng(123);
  for (int trial = 0; trial < 10; ++trial) {
    DataGraph g = testing_util::RandomGraph(30, 4, 8, &rng);
    for (int k = 0; k <= 3; ++k) {
      Partition p = ComputeKBisimulation(g, k);
      ExpectPartitionMatchesRelation(g, p, ReferenceKBisim(g, k));
    }
  }
}

TEST(PartitionTest, RefinementIsMonotone) {
  Rng rng(5);
  DataGraph g = testing_util::RandomGraph(100, 5, 20, &rng);
  Partition prev = LabelSplit(g);
  for (int k = 1; k <= 5; ++k) {
    Partition next = ComputeKBisimulation(g, k);
    EXPECT_GE(next.num_blocks, prev.num_blocks);
    // next refines prev: same next-block implies same prev-block.
    std::unordered_map<int32_t, int32_t> mapping;
    for (NodeId u = 0; u < g.NumNodes(); ++u) {
      auto [it, inserted] = mapping.emplace(
          next.block_of[static_cast<size_t>(u)],
          prev.block_of[static_cast<size_t>(u)]);
      EXPECT_EQ(it->second, prev.block_of[static_cast<size_t>(u)]);
    }
    prev = std::move(next);
  }
}

TEST(PartitionTest, SelectiveRefinementLeavesOtherBlocksAlone) {
  Rng rng(9);
  DataGraph g = testing_util::RandomGraph(60, 4, 10, &rng);
  Partition p0 = LabelSplit(g);
  std::vector<bool> refine(static_cast<size_t>(p0.num_blocks), false);
  refine[0] = true;  // only the first block
  Partition p1 = RefineOnce(g, p0, refine);
  // Every block except possibly block 0 survives intact.
  std::unordered_map<int32_t, std::set<int32_t>> images;
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    images[p0.block_of[static_cast<size_t>(u)]].insert(
        p1.block_of[static_cast<size_t>(u)]);
  }
  for (const auto& [old_block, new_blocks] : images) {
    if (old_block != 0) {
      EXPECT_EQ(new_blocks.size(), 1u) << "block " << old_block << " split";
    }
  }
}

TEST(PartitionTest, FullBisimulationIsFixpoint) {
  Rng rng(11);
  DataGraph g = testing_util::RandomGraph(80, 4, 15, &rng);
  int rounds = 0;
  Partition p = ComputeFullBisimulation(g, &rounds);
  EXPECT_GT(rounds, 0);
  std::vector<bool> all(static_cast<size_t>(p.num_blocks), true);
  Partition again = RefineOnce(g, p, all);
  EXPECT_EQ(again.num_blocks, p.num_blocks);
  EXPECT_TRUE(SamePartition(p, again));
}

TEST(PartitionTest, SamePartitionDetectsRenumbering) {
  Partition a{{0, 0, 1, 2}, 3, {}};
  Partition b{{2, 2, 0, 1}, 3, {}};
  Partition c{{0, 1, 1, 2}, 3, {}};
  EXPECT_TRUE(SamePartition(a, b));
  EXPECT_FALSE(SamePartition(a, c));
}

TEST(PartitionTest, KBisimilarNodesHaveSameShortIncomingPaths) {
  // Property 1 of the A(k)-index: k-bisimilar nodes have identical sets of
  // incoming label paths of length <= k.
  Rng rng(77);
  DataGraph g = testing_util::RandomGraph(50, 3, 12, &rng);
  const int k = 3;
  Partition p = ComputeKBisimulation(g, k);
  // A path of `len` labels has len-1 edges; the property covers <= k edges.
  for (int len = 1; len <= k + 1; ++len) {
    std::unordered_map<int32_t, std::set<std::vector<LabelId>>> per_block;
    for (NodeId u = 0; u < g.NumNodes(); ++u) {
      auto paths = IncomingLabelPaths(g, u, len, 10000);
      std::set<std::vector<LabelId>> set(paths.begin(), paths.end());
      auto [it, inserted] =
          per_block.emplace(p.block_of[static_cast<size_t>(u)], set);
      if (!inserted) {
        EXPECT_EQ(it->second, set)
            << "path sets of length " << len << " differ within a block";
      }
    }
  }
}

}  // namespace
}  // namespace dki
