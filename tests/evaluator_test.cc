#include "query/evaluator.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/random.h"
#include "index/ak_index.h"
#include "index/dk_index.h"
#include "index/one_index.h"
#include "tests/test_util.h"

namespace dki {
namespace {

class EvaluatorTest : public ::testing::Test {
 protected:
  EvaluatorTest() : g_(testing_util::BuildMovieGraph()) {}

  std::vector<NodeId> Eval(const std::string& text, EvalStats* stats = nullptr) {
    return EvaluateOnDataGraph(g_, testing_util::MustParse(text, g_.labels()),
                               stats);
  }

  std::vector<std::string> Labels(const std::vector<NodeId>& nodes) {
    std::vector<std::string> out;
    for (NodeId n : nodes) out.push_back(g_.label_name(n));
    return out;
  }

  DataGraph g_;
};

TEST_F(EvaluatorTest, SingleLabelReturnsAllNodesWithLabel) {
  auto result = Eval("movie");
  LabelId movie = g_.labels().Find("movie");
  EXPECT_EQ(result, g_.NodesWithLabel(movie));
}

TEST_F(EvaluatorTest, PaperChainQuery) {
  // director.movie.title: every title under a director's movie.
  auto result = Eval("director.movie.title");
  EXPECT_EQ(result.size(), 3u);  // three director movies carry titles
  for (NodeId n : result) EXPECT_EQ(g_.label_name(n), "title");
}

TEST_F(EvaluatorTest, PaperOptionalWildcardQuery) {
  // movieDB.(_)?.movie.actor.name — the paper's irregularity-tolerant query.
  auto result = Eval("movieDB.(_)?.movie.actor.name");
  EXPECT_EQ(result.size(), 1u);  // only the actor nested inside a movie
  EXPECT_EQ(g_.label_name(result[0]), "name");
}

TEST_F(EvaluatorTest, DescendantQuery) {
  auto all_titles = Eval("movieDB//title");
  EXPECT_EQ(all_titles, g_.NodesWithLabel(g_.labels().Find("title")));
}

TEST_F(EvaluatorTest, AlternationQuery) {
  auto result = Eval("(director|actor).name");
  // 3 director/actor names at top level + 1 nested actor name.
  EXPECT_EQ(result.size(), 5u);
}

TEST_F(EvaluatorTest, EmptyResultForUnknownLabel) {
  EvalStats stats;
  auto result = Eval("nosuchlabel.title", &stats);
  EXPECT_TRUE(result.empty());
  EXPECT_EQ(stats.result_size, 0);
}

TEST_F(EvaluatorTest, StatsCountVisits) {
  EvalStats stats;
  Eval("director.movie.title", &stats);
  // Direct evaluation pops *data* nodes: the data/index split in metrics
  // must reflect that (regression: these pops were booked as index visits,
  // leaving eval.data.data_nodes_visited permanently zero).
  EXPECT_GT(stats.data_nodes_visited, 0);
  EXPECT_EQ(stats.index_nodes_visited, 0);  // no index graph involved
  EXPECT_EQ(stats.cost(), stats.data_nodes_visited);
}

TEST_F(EvaluatorTest, ValidateCandidateAgreesWithForwardEvaluation) {
  PathExpression q =
      testing_util::MustParse("actor.movie.title", g_.labels());
  auto truth = EvaluateOnDataGraph(g_, q);
  std::set<NodeId> truth_set(truth.begin(), truth.end());
  int64_t visits = 0;
  for (NodeId n = 0; n < g_.NumNodes(); ++n) {
    EXPECT_EQ(ValidateCandidate(g_, q, n, &visits),
              truth_set.count(n) > 0)
        << "node " << n;
  }
  EXPECT_GT(visits, 0);
}

TEST_F(EvaluatorTest, SharedScratchValidationMatchesFreshState) {
  // The scratch-reusing overload must agree with the allocate-per-call form
  // on verdicts AND on visited-pair counts, across many candidates and
  // several queries through the same scratch instance.
  Rng rng(907);
  DataGraph g = testing_util::RandomGraph(120, 4, 40, &rng);
  ValidationScratch scratch;
  for (int qi = 0; qi < 5; ++qi) {
    PathExpression q = testing_util::MustParse(
        testing_util::RandomChainQuery(g, 3, &rng), g.labels());
    for (NodeId n = 0; n < g.NumNodes(); ++n) {
      int64_t fresh_visits = 0, scratch_visits = 0;
      bool fresh = ValidateCandidate(g, q, n, &fresh_visits);
      bool reused = ValidateCandidate(g, q, n, &scratch_visits, &scratch);
      EXPECT_EQ(fresh, reused) << "query " << q.text() << " node " << n;
      EXPECT_EQ(fresh_visits, scratch_visits)
          << "query " << q.text() << " node " << n;
    }
  }
}

TEST_F(EvaluatorTest, IndexEvaluationMatchesTruthAcrossIndexKinds) {
  std::vector<std::string> queries = {
      "movie",
      "director.movie",
      "director.movie.title",
      "actor.movie.title",
      "movieDB.(_)?.movie.actor.name",
      "movieDB//name",
      "(director|actor).movie",
      "movie.title.VALUE",
  };
  IndexGraph one = OneIndex::Build(&g_);
  DataGraph g_ak = g_;
  std::vector<AkIndex> aks;
  for (int k = 0; k <= 3; ++k) aks.push_back(AkIndex::Build(&g_ak, k));
  LabelRequirements reqs;
  reqs[g_.labels().Find("title")] = 2;
  reqs[g_.labels().Find("name")] = 1;
  DataGraph g_dk = g_;
  DkIndex dk = DkIndex::Build(&g_dk, reqs);

  for (const auto& text : queries) {
    PathExpression q = testing_util::MustParse(text, g_.labels());
    auto truth = EvaluateOnDataGraph(g_, q);
    EXPECT_EQ(EvaluateOnIndex(one, q), truth) << "1-index: " << text;
    for (const auto& ak : aks) {
      EXPECT_EQ(EvaluateOnIndex(ak.index(), q), truth)
          << "A(" << ak.k() << "): " << text;
    }
    EXPECT_EQ(EvaluateOnIndex(dk.index(), q), truth) << "D(k): " << text;
  }
}

TEST_F(EvaluatorTest, UnvalidatedAnswerIsSafeSuperset) {
  DataGraph g = g_;
  AkIndex a0 = AkIndex::Build(&g, 0);
  PathExpression q =
      testing_util::MustParse("director.movie.title", g.labels());
  auto truth = EvaluateOnDataGraph(g, q);
  auto raw = EvaluateOnIndex(a0.index(), q, nullptr, /*validate=*/false);
  for (NodeId n : truth) {
    EXPECT_TRUE(std::binary_search(raw.begin(), raw.end(), n));
  }
  // A(0) cannot distinguish titles by provenance: the raw answer includes
  // all titles, strictly more than the truth... unless all titles match.
  EXPECT_GE(raw.size(), truth.size());
}

TEST_F(EvaluatorTest, ValidationChargesDataNodeVisits) {
  DataGraph g = g_;
  AkIndex a0 = AkIndex::Build(&g, 0);
  PathExpression q =
      testing_util::MustParse("actor.movie.title", g.labels());
  EvalStats stats;
  auto result = EvaluateOnIndex(a0.index(), q, &stats);
  EXPECT_EQ(result, EvaluateOnDataGraph(g, q));
  EXPECT_GT(stats.uncertain_index_nodes, 0);
  EXPECT_GT(stats.validated_candidates, 0);
  EXPECT_GT(stats.data_nodes_visited, 0);
  EXPECT_EQ(stats.cost(),
            stats.index_nodes_visited + stats.data_nodes_visited);
}

TEST_F(EvaluatorTest, CyclicGraphQueriesTerminate) {
  DataGraph g;
  NodeId a = g.AddNode("a");
  NodeId b = g.AddNode("b");
  g.AddEdge(g.root(), a);
  g.AddEdge(a, b);
  g.AddEdge(b, a);  // cycle
  PathExpression star = testing_util::MustParse("a.(b.a)*", g.labels());
  auto result = EvaluateOnDataGraph(g, star);
  EXPECT_EQ(result, (std::vector<NodeId>{a}));
  PathExpression digs = testing_util::MustParse("ROOT//b", g.labels());
  auto result2 = EvaluateOnDataGraph(g, digs);
  EXPECT_EQ(result2, (std::vector<NodeId>{b}));
}

}  // namespace
}  // namespace dki
