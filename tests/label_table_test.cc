#include "graph/label_table.h"

#include <gtest/gtest.h>

namespace dki {
namespace {

TEST(LabelTableTest, ReservedLabelsArePreInterned) {
  LabelTable t;
  EXPECT_EQ(t.Find("ROOT"), LabelTable::kRootLabel);
  EXPECT_EQ(t.Find("VALUE"), LabelTable::kValueLabel);
  EXPECT_EQ(t.Name(LabelTable::kRootLabel), "ROOT");
  EXPECT_EQ(t.Name(LabelTable::kValueLabel), "VALUE");
  EXPECT_EQ(t.size(), 2);
}

TEST(LabelTableTest, InternIsIdempotent) {
  LabelTable t;
  LabelId a = t.Intern("movie");
  LabelId b = t.Intern("movie");
  EXPECT_EQ(a, b);
  EXPECT_EQ(t.size(), 3);
  EXPECT_EQ(t.Name(a), "movie");
}

TEST(LabelTableTest, DistinctNamesGetDistinctIds) {
  LabelTable t;
  LabelId a = t.Intern("movie");
  LabelId b = t.Intern("actor");
  EXPECT_NE(a, b);
  EXPECT_EQ(t.Find("actor"), b);
}

TEST(LabelTableTest, FindUnknownReturnsInvalid) {
  LabelTable t;
  EXPECT_EQ(t.Find("nope"), kInvalidLabel);
}

TEST(LabelTableTest, ManyLabels) {
  LabelTable t;
  for (int i = 0; i < 1000; ++i) {
    t.Intern("label" + std::to_string(i));
  }
  EXPECT_EQ(t.size(), 1002);
  EXPECT_EQ(t.Name(t.Find("label999")), "label999");
}

TEST(LabelTableTest, CopySemantics) {
  LabelTable t;
  t.Intern("x");
  LabelTable copy = t;
  EXPECT_EQ(copy.Find("x"), t.Find("x"));
  copy.Intern("y");
  EXPECT_EQ(t.Find("y"), kInvalidLabel);  // deep copy, original untouched
}

}  // namespace
}  // namespace dki
