// Equivalence suite for the frozen read path (query/frozen_view.h): frozen
// evaluation — single-query, batched over 1..8 threads, and with parallel
// uncertain-extent validation — must be bit-identical to the reference
// evaluators, in results AND in EvalStats, across the workload generator's
// query mix on XMark and NASA.

#include "query/frozen_view.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/thread_pool.h"
#include "datagen/nasa_generator.h"
#include "datagen/xmark_generator.h"
#include "index/ak_index.h"
#include "index/dk_index.h"
#include "index/one_index.h"
#include "query/evaluator.h"
#include "query/load_analyzer.h"
#include "query/result_cache.h"
#include "query/workload.h"
#include "tests/test_util.h"

namespace dki {
namespace {

// This suite pins the reference backend: EvalStats are compared pop-for-pop
// against query/evaluator.cc, a property only forced EvalBackend::kNfa
// guarantees (under kAuto the planner may legally pick a backend with
// different traversal counts — tests/backend_diff_test.cc covers those and
// holds their RESULTS bit-identical).
FrozenViewOptions ReferenceBackend() {
  FrozenViewOptions options;
  options.backend = EvalBackendMode::kNfa;
  return options;
}

void ExpectStatsEq(const EvalStats& want, const EvalStats& got,
                   const std::string& context) {
  EXPECT_EQ(want.index_nodes_visited, got.index_nodes_visited) << context;
  EXPECT_EQ(want.data_nodes_visited, got.data_nodes_visited) << context;
  EXPECT_EQ(want.validated_candidates, got.validated_candidates) << context;
  EXPECT_EQ(want.uncertain_index_nodes, got.uncertain_index_nodes) << context;
  EXPECT_EQ(want.result_size, got.result_size) << context;
}

// Asserts frozen == reference for one (index, query) pair, on both the
// index path and the data-graph path, with and without validation.
void ExpectFrozenMatchesReference(const IndexGraph& index,
                                  const FrozenView& view,
                                  const PathExpression& query,
                                  FrozenScratch* scratch) {
  const std::string ctx = "query: " + query.text();
  for (bool validate : {true, false}) {
    EvalStats ref_stats, frozen_stats;
    std::vector<NodeId> ref =
        EvaluateOnIndex(index, query, &ref_stats, validate);
    std::vector<NodeId> frozen =
        view.Evaluate(query, &frozen_stats, validate, scratch);
    EXPECT_EQ(ref, frozen) << ctx << " validate=" << validate;
    ExpectStatsEq(ref_stats, frozen_stats,
                  ctx + " validate=" + std::to_string(validate));
  }
  EvalStats ref_stats, frozen_stats;
  std::vector<NodeId> ref =
      EvaluateOnDataGraph(index.graph(), query, &ref_stats);
  std::vector<NodeId> frozen =
      view.EvaluateOnData(query, &frozen_stats, scratch);
  EXPECT_EQ(ref, frozen) << ctx << " (data path)";
  ExpectStatsEq(ref_stats, frozen_stats, ctx + " (data path)");
}

// The workload generator's query mix over `graph`, plus a few handwritten
// expressions exercising wildcards, alternation and closures (the workload
// itself emits plain chains).
std::vector<std::string> MixedQueries(const DataGraph& graph, uint64_t seed) {
  Rng rng(seed);
  WorkloadOptions options;
  options.num_queries = 30;
  Workload load = GenerateWorkload(graph, options, &rng);
  std::vector<std::string> queries = load.queries;
  queries.push_back("_");
  queries.push_back("_._");
  if (!load.queries.empty()) {
    queries.push_back("(" + load.queries[0] + ")|(_._._)");
    queries.push_back("_*." + load.queries[0]);
  }
  queries.push_back("no_such_label_anywhere");
  return queries;
}

TEST(FrozenViewTest, MovieGraphMatchesReferenceOnAllIndexKinds) {
  DataGraph g = testing_util::BuildMovieGraph();
  const std::vector<std::string> queries = {
      "movieDB.director.movie",       "movie.title",
      "director.movie.title",         "actor.movie",
      "_.movie",                      "(director|actor).movie",
      "movieDB._._",                  "_*.title",
      "actor",                        "does_not_exist.movie",
  };

  IndexGraph one = OneIndex::Build(&g);
  AkIndex a0 = AkIndex::Build(&g, 0);
  AkIndex a2 = AkIndex::Build(&g, 2);
  LabelRequirements reqs =
      MineRequirementsFromText(queries, g.labels(), nullptr);
  DkIndex dk = DkIndex::Build(&g, reqs);

  const std::vector<const IndexGraph*> kinds = {&one, &a0.index(),
                                                &a2.index(), &dk.index()};
  for (const IndexGraph* index : kinds) {
    FrozenView view(*index, ReferenceBackend());
    EXPECT_EQ(view.epoch(), index->epoch());
    EXPECT_EQ(view.num_data_nodes(), g.NumNodes());
    EXPECT_EQ(view.num_index_nodes(), index->NumIndexNodes());
    EXPECT_GT(view.ApproxBytes(), 0);
    FrozenScratch scratch;  // shared across queries: exercises reuse
    for (const std::string& text : queries) {
      ExpectFrozenMatchesReference(
          *index, view, testing_util::MustParse(text, g.labels()), &scratch);
    }
  }
}

TEST(FrozenViewTest, RandomGraphsMatchReference) {
  Rng rng(7);
  for (int round = 0; round < 8; ++round) {
    DataGraph g = testing_util::RandomGraph(/*n=*/120, /*num_labels=*/6,
                                            /*extra_edges=*/25, &rng);
    AkIndex ak = AkIndex::Build(&g, static_cast<int>(round % 4));
    FrozenView view(ak.index(), ReferenceBackend());
    FrozenScratch scratch;
    for (int q = 0; q < 12; ++q) {
      std::string text = testing_util::RandomChainQuery(
          g, 2 + static_cast<int>(rng.UniformInt(0, 3)), &rng);
      ExpectFrozenMatchesReference(
          ak.index(), view, testing_util::MustParse(text, g.labels()),
          &scratch);
    }
  }
}

TEST(FrozenViewTest, XmarkWorkloadMatchesReference) {
  XmarkOptions opt;
  opt.scale = 0.08;
  DataGraph g = GenerateXmarkGraph(opt).graph;
  std::vector<std::string> queries = MixedQueries(g, 11);

  // D(k) mined from the load (mostly certain answers) AND a low-k A(k)
  // (many k-uncertain extents, exercising the validation path).
  LabelRequirements reqs =
      MineRequirementsFromText(queries, g.labels(), nullptr);
  DkIndex dk = DkIndex::Build(&g, reqs);
  AkIndex a1 = AkIndex::Build(&g, 1);

  for (const IndexGraph* index : {&dk.index(), &a1.index()}) {
    FrozenView view(*index, ReferenceBackend());
    FrozenScratch scratch;
    for (const std::string& text : queries) {
      ExpectFrozenMatchesReference(
          *index, view, testing_util::MustParse(text, g.labels()), &scratch);
    }
  }
}

TEST(FrozenViewTest, NasaWorkloadMatchesReference) {
  NasaOptions opt;
  opt.scale = 0.08;
  DataGraph g = GenerateNasaGraph(opt).graph;
  std::vector<std::string> queries = MixedQueries(g, 13);

  LabelRequirements reqs =
      MineRequirementsFromText(queries, g.labels(), nullptr);
  DkIndex dk = DkIndex::Build(&g, reqs);
  AkIndex a1 = AkIndex::Build(&g, 1);

  for (const IndexGraph* index : {&dk.index(), &a1.index()}) {
    FrozenView view(*index, ReferenceBackend());
    FrozenScratch scratch;
    for (const std::string& text : queries) {
      ExpectFrozenMatchesReference(
          *index, view, testing_util::MustParse(text, g.labels()), &scratch);
    }
  }
}

TEST(FrozenViewTest, BatchMatchesSequentialAcrossThreadCounts) {
  XmarkOptions opt;
  opt.scale = 0.06;
  DataGraph g = GenerateXmarkGraph(opt).graph;
  std::vector<std::string> texts = MixedQueries(g, 17);
  AkIndex ak = AkIndex::Build(&g, 1);
  FrozenView view(ak.index(), ReferenceBackend());

  std::vector<PathExpression> queries;
  for (const std::string& t : texts) {
    queries.push_back(testing_util::MustParse(t, g.labels()));
  }

  // Sequential ground truth (also the reference evaluator's answer).
  std::vector<std::vector<NodeId>> want_results;
  std::vector<EvalStats> want_stats;
  for (const PathExpression& q : queries) {
    EvalStats st;
    want_results.push_back(EvaluateOnIndex(ak.index(), q, &st));
    want_stats.push_back(st);
  }

  for (bool validate : {true, false}) {
    if (!validate) {
      want_results.clear();
      want_stats.clear();
      for (const PathExpression& q : queries) {
        EvalStats st;
        want_results.push_back(
            EvaluateOnIndex(ak.index(), q, &st, /*validate=*/false));
        want_stats.push_back(st);
      }
    }
    for (int threads : {1, 2, 4, 8}) {
      ThreadPool pool(threads);
      std::vector<EvalStats> got_stats;
      std::vector<std::vector<NodeId>> got =
          view.EvaluateBatch(queries, &pool, &got_stats, validate);
      ASSERT_EQ(got.size(), queries.size());
      ASSERT_EQ(got_stats.size(), queries.size());
      for (size_t i = 0; i < queries.size(); ++i) {
        EXPECT_EQ(want_results[i], got[i])
            << "threads=" << threads << " query=" << texts[i];
        ExpectStatsEq(want_stats[i], got_stats[i],
                      "threads=" + std::to_string(threads) +
                          " query=" + texts[i]);
      }
    }
  }
  // Null pool runs inline (want_results now holds the validate=false truth).
  std::vector<std::vector<NodeId>> inline_results =
      view.EvaluateBatch(queries, nullptr, nullptr, /*validate=*/false);
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(want_results[i], inline_results[i]);
  }
}

TEST(FrozenViewTest, ParallelValidationMatchesSequential) {
  // A(0) leaves every non-depth-0 match uncertain, so a multi-label chain
  // pushes hundreds of candidates through validation — well past
  // kParallelValidationThreshold, exercising the in-query fan-out.
  XmarkOptions opt;
  opt.scale = 0.12;
  DataGraph g = GenerateXmarkGraph(opt).graph;
  AkIndex a0 = AkIndex::Build(&g, 0);
  FrozenView view(a0.index(), ReferenceBackend());
  ThreadPool pool(4);

  std::vector<std::string> texts = MixedQueries(g, 19);
  bool exercised_fanout = false;
  FrozenScratch seq_scratch, par_scratch;
  for (const std::string& text : texts) {
    PathExpression query = testing_util::MustParse(text, g.labels());
    EvalStats ref_stats, seq_stats, par_stats;
    std::vector<NodeId> ref = EvaluateOnIndex(a0.index(), query, &ref_stats);
    std::vector<NodeId> seq =
        view.Evaluate(query, &seq_stats, /*validate=*/true, &seq_scratch);
    std::vector<NodeId> par = view.Evaluate(query, &par_stats,
                                            /*validate=*/true, &par_scratch,
                                            &pool);
    EXPECT_EQ(ref, seq) << text;
    EXPECT_EQ(ref, par) << text;
    ExpectStatsEq(ref_stats, seq_stats, "seq " + text);
    ExpectStatsEq(ref_stats, par_stats, "par " + text);
    if (seq_stats.validated_candidates >=
        FrozenView::kParallelValidationThreshold) {
      exercised_fanout = true;
    }
  }
  EXPECT_TRUE(exercised_fanout)
      << "workload never crossed the parallel-validation threshold; "
         "the fan-out path went untested";
}

TEST(FrozenViewTest, ResultCacheServesFrozenPath) {
  DataGraph g = testing_util::BuildMovieGraph();
  AkIndex ak = AkIndex::Build(&g, 1);
  FrozenView view(ak.index());
  PathExpression query =
      testing_util::MustParse("director.movie.title", g.labels());

  ResultCache cache;
  EvalStats miss_stats;
  std::vector<NodeId> first =
      cache.CachedEvaluate(view, query, &miss_stats);
  EXPECT_EQ(first, EvaluateOnIndex(ak.index(), query));
  EXPECT_EQ(cache.stats().misses, 1);

  EvalStats hit_stats;
  std::vector<NodeId> second = cache.CachedEvaluate(view, query, &hit_stats);
  EXPECT_EQ(first, second);
  EXPECT_EQ(cache.stats().hits, 1);
  EXPECT_EQ(hit_stats.index_nodes_visited, 0);  // served from memory
  EXPECT_EQ(hit_stats.result_size, miss_stats.result_size);
}

TEST(FrozenViewTest, ScratchReusesAcrossViewsAndQueries) {
  // One scratch across different graphs, views, automaton sizes and label
  // universes: the per-query recompile key and the generation-stamped
  // arrays must never leak state between evaluations.
  Rng rng(23);
  FrozenScratch scratch;
  for (int round = 0; round < 4; ++round) {
    DataGraph g = testing_util::RandomGraph(
        /*n=*/60 + round * 40, /*num_labels=*/3 + round * 4,
        /*extra_edges=*/10, &rng);
    AkIndex ak = AkIndex::Build(&g, 1);
    FrozenView view(ak.index());
    for (int q = 0; q < 6; ++q) {
      std::string text = testing_util::RandomChainQuery(g, 3, &rng);
      PathExpression query = testing_util::MustParse(text, g.labels());
      EXPECT_EQ(EvaluateOnIndex(ak.index(), query),
                view.Evaluate(query, nullptr, true, &scratch))
          << text;
    }
  }
}

// Satellite: the label inverted indexes behind the bucket-backed
// NodesWithLabel must agree with a full scan, on both graphs, including
// unknown/invalid labels.
TEST(FrozenViewTest, NodesWithLabelMatchesScan) {
  XmarkOptions opt;
  opt.scale = 0.05;
  DataGraph g = GenerateXmarkGraph(opt).graph;
  AkIndex ak = AkIndex::Build(&g, 2);
  const IndexGraph& index = ak.index();

  for (LabelId l = 0; l < static_cast<LabelId>(g.labels().size()); ++l) {
    std::vector<NodeId> scan;
    for (NodeId v = 0; v < g.NumNodes(); ++v) {
      if (g.label(v) == l) scan.push_back(v);
    }
    EXPECT_EQ(scan, g.NodesWithLabel(l)) << "data label " << l;

    std::vector<IndexNodeId> index_scan;
    for (IndexNodeId i = 0; i < index.NumIndexNodes(); ++i) {
      if (index.label(i) == l) index_scan.push_back(i);
    }
    EXPECT_EQ(index_scan, index.NodesWithLabel(l)) << "index label " << l;
  }
  EXPECT_TRUE(g.NodesWithLabel(kInvalidLabel).empty());
  EXPECT_TRUE(g.NodesWithLabel(static_cast<LabelId>(g.labels().size()))
                  .empty());
  EXPECT_TRUE(index.NodesWithLabel(kInvalidLabel).empty());
}

// Satellite: buckets stay correct through the Section 5 mutation paths
// (SplitOff via update algorithms, AppendNode via subgraph merges).
TEST(FrozenViewTest, NodesWithLabelSurvivesMutations) {
  Rng rng(29);
  DataGraph g = testing_util::RandomGraph(80, 5, 15, &rng);
  LabelRequirements reqs;
  for (LabelId l = 0; l < static_cast<LabelId>(g.labels().size()); ++l) {
    reqs[l] = 2;
  }
  DkIndex dk = DkIndex::Build(&g, reqs);
  for (int i = 0; i < 10; ++i) {
    NodeId u = static_cast<NodeId>(rng.UniformInt(1, g.NumNodes() - 1));
    NodeId v = static_cast<NodeId>(rng.UniformInt(1, g.NumNodes() - 1));
    dk.AddEdge(u, v);
  }
  const IndexGraph& index = dk.index();
  for (LabelId l = 0; l < static_cast<LabelId>(g.labels().size()); ++l) {
    std::vector<IndexNodeId> scan;
    for (IndexNodeId i = 0; i < index.NumIndexNodes(); ++i) {
      if (index.label(i) == l) scan.push_back(i);
    }
    EXPECT_EQ(scan, index.NodesWithLabel(l)) << "after updates, label " << l;
  }
}

}  // namespace
}  // namespace dki
