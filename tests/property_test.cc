// Randomized property sweeps over the whole index family, parameterized by
// graph shape (TEST_P / INSTANTIATE_TEST_SUITE_P): on random graphs and
// random workloads, every index kind must answer every query exactly
// (safety + validation = ground truth), and the D(k)-index must keep its
// structural invariants through arbitrary update sequences.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <tuple>

#include "common/random.h"
#include "index/ak_index.h"
#include "index/dk_index.h"
#include "index/one_index.h"
#include "query/evaluator.h"
#include "query/load_analyzer.h"
#include "query/workload.h"
#include "tests/test_util.h"

namespace dki {
namespace {

struct GraphShape {
  int nodes;
  int labels;
  int extra_edges;
  uint64_t seed;
};

std::string ShapeName(const ::testing::TestParamInfo<GraphShape>& info) {
  return "n" + std::to_string(info.param.nodes) + "_l" +
         std::to_string(info.param.labels) + "_e" +
         std::to_string(info.param.extra_edges) + "_s" +
         std::to_string(info.param.seed);
}

class IndexFamilyProperty : public ::testing::TestWithParam<GraphShape> {
 protected:
  IndexFamilyProperty() : rng_(GetParam().seed) {
    g_ = testing_util::RandomGraph(GetParam().nodes, GetParam().labels,
                                   GetParam().extra_edges, &rng_);
  }

  std::vector<std::string> SampleQueries(int count, int max_len) {
    std::vector<std::string> out;
    for (int i = 0; i < count; ++i) {
      out.push_back(testing_util::RandomChainQuery(
          g_, static_cast<int>(rng_.UniformInt(1, max_len)), &rng_));
    }
    return out;
  }

  Rng rng_;
  DataGraph g_;
};

TEST_P(IndexFamilyProperty, AllIndexesAnswerExactly) {
  IndexGraph one = OneIndex::Build(&g_);
  DataGraph g_ak = g_;
  AkIndex a2 = AkIndex::Build(&g_ak, 2);
  std::vector<std::string> queries = SampleQueries(15, 5);
  LabelRequirements reqs =
      MineRequirementsFromText(queries, g_.labels(), nullptr);
  DataGraph g_dk = g_;
  DkIndex dk = DkIndex::Build(&g_dk, reqs);

  for (const std::string& text : queries) {
    PathExpression q = testing_util::MustParse(text, g_.labels());
    auto truth = EvaluateOnDataGraph(g_, q);
    EXPECT_EQ(EvaluateOnIndex(one, q), truth) << "1-index " << text;
    EXPECT_EQ(EvaluateOnIndex(a2.index(), q), truth) << "A(2) " << text;
    EXPECT_EQ(EvaluateOnIndex(dk.index(), q), truth) << "D(k) " << text;
  }
}

TEST_P(IndexFamilyProperty, DkWorkloadNeedsNoValidation) {
  std::vector<std::string> queries = SampleQueries(10, 4);
  LabelRequirements reqs =
      MineRequirementsFromText(queries, g_.labels(), nullptr);
  DkIndex dk = DkIndex::Build(&g_, reqs);
  for (const std::string& text : queries) {
    PathExpression q = testing_util::MustParse(text, g_.labels());
    EvalStats stats;
    EvaluateOnIndex(dk.index(), q, &stats);
    EXPECT_EQ(stats.uncertain_index_nodes, 0) << text;
  }
}

TEST_P(IndexFamilyProperty, DkSmallerOrEqualToUniformAk) {
  // The load-aware index never exceeds the uniform A(kmax) that would be
  // needed for the same soundness horizon.
  std::vector<std::string> queries = SampleQueries(10, 4);
  LabelRequirements reqs =
      MineRequirementsFromText(queries, g_.labels(), nullptr);
  int kmax = 0;
  for (const auto& [label, k] : reqs) kmax = std::max(kmax, k);
  DataGraph g_dk = g_;
  DkIndex dk = DkIndex::Build(&g_dk, reqs);
  AkIndex ak = AkIndex::Build(&g_, kmax);
  EXPECT_LE(dk.index().NumIndexNodes(), ak.index().NumIndexNodes());
}

TEST_P(IndexFamilyProperty, UpdateStormKeepsDkExact) {
  std::vector<std::string> queries = SampleQueries(8, 4);
  LabelRequirements reqs =
      MineRequirementsFromText(queries, g_.labels(), nullptr);
  DkIndex dk = DkIndex::Build(&g_, reqs);
  for (int i = 0; i < 20; ++i) {
    NodeId u = static_cast<NodeId>(rng_.UniformInt(1, g_.NumNodes() - 1));
    NodeId v = static_cast<NodeId>(rng_.UniformInt(1, g_.NumNodes() - 1));
    dk.AddEdge(u, v);
  }
  std::string error;
  ASSERT_TRUE(dk.index().ValidatePartition(&error)) << error;
  ASSERT_TRUE(dk.index().ValidateEdges(&error)) << error;
  ASSERT_TRUE(dk.index().ValidateDkConstraint(&error)) << error;
  for (const std::string& text : queries) {
    PathExpression q = testing_util::MustParse(text, g_.labels());
    EXPECT_EQ(EvaluateOnIndex(dk.index(), q), EvaluateOnDataGraph(g_, q))
        << text;
  }
}

TEST_P(IndexFamilyProperty, MixedUpdatePromoteDemoteCycle) {
  std::vector<std::string> queries = SampleQueries(6, 4);
  LabelRequirements reqs =
      MineRequirementsFromText(queries, g_.labels(), nullptr);
  DkIndex dk = DkIndex::Build(&g_, reqs);

  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 5; ++i) {
      NodeId u = static_cast<NodeId>(rng_.UniformInt(1, g_.NumNodes() - 1));
      NodeId v = static_cast<NodeId>(rng_.UniformInt(1, g_.NumNodes() - 1));
      dk.AddEdge(u, v);
    }
    dk.PromoteBatch(reqs);
    if (round == 1) dk.Demote(reqs);
    std::string error;
    ASSERT_TRUE(dk.index().ValidatePartition(&error))
        << "round " << round << ": " << error;
    ASSERT_TRUE(dk.index().ValidateEdges(&error))
        << "round " << round << ": " << error;
    ASSERT_TRUE(dk.index().ValidateDkConstraint(&error))
        << "round " << round << ": " << error;
    for (const std::string& text : queries) {
      PathExpression q = testing_util::MustParse(text, g_.labels());
      EXPECT_EQ(EvaluateOnIndex(dk.index(), q), EvaluateOnDataGraph(g_, q))
          << "round " << round << ": " << text;
    }
  }
}

TEST_P(IndexFamilyProperty, RegexQueriesAnswerExactlyOnAllIndexes) {
  // Beyond chains: wildcard / optional / alternation / descendant queries.
  IndexGraph one = OneIndex::Build(&g_);
  DataGraph g_ak = g_;
  AkIndex a1 = AkIndex::Build(&g_ak, 1);

  std::vector<std::string> regexes;
  for (int i = 0; i < 6; ++i) {
    std::string chain = testing_util::RandomChainQuery(g_, 3, &rng_);
    auto dot = chain.find('.');
    if (dot == std::string::npos) continue;
    regexes.push_back(chain.substr(0, dot) + "._?" + chain.substr(dot));
    regexes.push_back(chain.substr(0, dot) + "//" + chain.substr(dot + 1));
  }
  for (const std::string& text : regexes) {
    PathExpression q = testing_util::MustParse(text, g_.labels());
    auto truth = EvaluateOnDataGraph(g_, q);
    EXPECT_EQ(EvaluateOnIndex(one, q), truth) << text;
    EXPECT_EQ(EvaluateOnIndex(a1.index(), q), truth) << text;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, IndexFamilyProperty,
    ::testing::Values(GraphShape{40, 3, 5, 1}, GraphShape{80, 4, 15, 2},
                      GraphShape{120, 5, 25, 3}, GraphShape{200, 4, 60, 4},
                      GraphShape{150, 8, 10, 5}, GraphShape{60, 2, 30, 6},
                      GraphShape{300, 6, 40, 7}, GraphShape{100, 3, 80, 8}),
    ShapeName);

}  // namespace
}  // namespace dki
