#include "pathexpr/nfa.h"

#include <gtest/gtest.h>

#include <set>

#include "pathexpr/parser.h"
#include "pathexpr/path_expression.h"

namespace dki {
namespace {

// Reference NFA simulation: does the automaton accept this word?
bool Accepts(const Automaton& a, const std::vector<LabelId>& word) {
  std::set<int> states(a.start_states().begin(), a.start_states().end());
  for (LabelId symbol : word) {
    std::set<int> next;
    std::vector<int> moved;
    for (int q : states) {
      moved.clear();
      a.Move(q, symbol, &moved);
      next.insert(moved.begin(), moved.end());
    }
    states = std::move(next);
    if (states.empty()) return false;
  }
  for (int q : states) {
    if (a.is_accept(q)) return true;
  }
  return false;
}

class NfaTest : public ::testing::Test {
 protected:
  NfaTest() {
    a_ = labels_.Intern("a");
    b_ = labels_.Intern("b");
    c_ = labels_.Intern("c");
  }

  Automaton Compile(const std::string& text) {
    std::string error;
    AstPtr ast = ParsePathExpression(text, &error);
    EXPECT_NE(ast, nullptr) << error;
    return CompileAst(*ast, labels_);
  }

  LabelTable labels_;
  LabelId a_, b_, c_;
};

TEST_F(NfaTest, SingleLabel) {
  Automaton m = Compile("a");
  EXPECT_TRUE(Accepts(m, {a_}));
  EXPECT_FALSE(Accepts(m, {b_}));
  EXPECT_FALSE(Accepts(m, {}));
  EXPECT_FALSE(Accepts(m, {a_, a_}));
}

TEST_F(NfaTest, Chain) {
  Automaton m = Compile("a.b.c");
  EXPECT_TRUE(Accepts(m, {a_, b_, c_}));
  EXPECT_FALSE(Accepts(m, {a_, b_}));
  EXPECT_FALSE(Accepts(m, {a_, c_, b_}));
}

TEST_F(NfaTest, Alternation) {
  Automaton m = Compile("a|b.c");
  EXPECT_TRUE(Accepts(m, {a_}));
  EXPECT_TRUE(Accepts(m, {b_, c_}));
  EXPECT_FALSE(Accepts(m, {b_}));
}

TEST_F(NfaTest, StarAndPlus) {
  Automaton star = Compile("a.b*");
  EXPECT_TRUE(Accepts(star, {a_}));
  EXPECT_TRUE(Accepts(star, {a_, b_, b_, b_}));
  EXPECT_FALSE(Accepts(star, {a_, b_, c_}));

  Automaton plus = Compile("a.b+");
  EXPECT_FALSE(Accepts(plus, {a_}));
  EXPECT_TRUE(Accepts(plus, {a_, b_}));
  EXPECT_TRUE(Accepts(plus, {a_, b_, b_}));
}

TEST_F(NfaTest, Optional) {
  Automaton m = Compile("a.b?.c");
  EXPECT_TRUE(Accepts(m, {a_, c_}));
  EXPECT_TRUE(Accepts(m, {a_, b_, c_}));
  EXPECT_FALSE(Accepts(m, {a_, b_, b_, c_}));
}

TEST_F(NfaTest, WildcardMatchesAnything) {
  Automaton m = Compile("a._.c");
  EXPECT_TRUE(Accepts(m, {a_, b_, c_}));
  EXPECT_TRUE(Accepts(m, {a_, a_, c_}));
  EXPECT_TRUE(Accepts(m, {a_, c_, c_}));
  EXPECT_FALSE(Accepts(m, {a_, c_}));
}

TEST_F(NfaTest, DescendantOrSelf) {
  Automaton m = Compile("a//c");
  EXPECT_TRUE(Accepts(m, {a_, c_}));
  EXPECT_TRUE(Accepts(m, {a_, b_, c_}));
  EXPECT_TRUE(Accepts(m, {a_, b_, b_, b_, c_}));
  EXPECT_FALSE(Accepts(m, {a_, b_}));
}

TEST_F(NfaTest, UnknownLabelMatchesNothing) {
  Automaton m = Compile("zzz");
  EXPECT_FALSE(Accepts(m, {a_}));
  EXPECT_FALSE(Accepts(m, {b_}));
  // But wildcard still matches anything.
  Automaton w = Compile("zzz|_");
  EXPECT_TRUE(Accepts(w, {a_}));
}

TEST_F(NfaTest, ReverseAcceptsReversedLanguage) {
  for (const char* text : {"a.b.c", "a|b.c", "a.b*", "a//c", "a._?.b"}) {
    Automaton m = Compile(text);
    Automaton r = m.Reverse();
    std::vector<std::vector<LabelId>> words = {
        {a_}, {b_}, {c_}, {a_, b_}, {a_, b_, c_}, {a_, c_},
        {c_, b_, a_}, {a_, b_, b_}, {a_, a_, c_}, {a_, b_, b_, c_}};
    for (const auto& w : words) {
      std::vector<LabelId> rev(w.rbegin(), w.rend());
      EXPECT_EQ(Accepts(m, w), Accepts(r, rev))
          << text << " disagrees on a word of length " << w.size();
    }
  }
}

TEST_F(NfaTest, MaxWordLengthFinite) {
  EXPECT_EQ(Compile("a").MaxWordLength(), 1);
  EXPECT_EQ(Compile("a.b.c").MaxWordLength(), 3);
  EXPECT_EQ(Compile("a.b?.c").MaxWordLength(), 3);
  EXPECT_EQ(Compile("a|b.c").MaxWordLength(), 2);
  EXPECT_EQ(Compile("a._._._.b").MaxWordLength(), 5);
}

TEST_F(NfaTest, MaxWordLengthInfinite) {
  EXPECT_EQ(Compile("a*").MaxWordLength(), -1);
  EXPECT_EQ(Compile("a.b+").MaxWordLength(), -1);
  EXPECT_EQ(Compile("a//b").MaxWordLength(), -1);
}

TEST_F(NfaTest, StartMoveAndCanStartWith) {
  Automaton m = Compile("a.b|c.b");
  EXPECT_TRUE(m.CanStartWith(a_));
  EXPECT_TRUE(m.CanStartWith(c_));
  EXPECT_FALSE(m.CanStartWith(b_));
  EXPECT_FALSE(m.AnyFromStart());
  EXPECT_FALSE(m.StartMove(a_).empty());
  EXPECT_TRUE(m.StartMove(b_).empty());

  Automaton w = Compile("_.b");
  EXPECT_TRUE(w.AnyFromStart());
  EXPECT_TRUE(w.CanStartWith(b_));
}

TEST(PathExpressionTest, ParseAndMetadata) {
  LabelTable labels;
  labels.Intern("a");
  labels.Intern("b");
  std::string error;
  auto chain = PathExpression::Parse("a.b", labels, &error);
  ASSERT_TRUE(chain.has_value()) << error;
  EXPECT_TRUE(chain->is_chain());
  EXPECT_EQ(chain->chain_labels().size(), 2u);
  EXPECT_EQ(chain->max_word_length(), 2);
  EXPECT_EQ(chain->text(), "a.b");

  auto regex = PathExpression::Parse("a//b", labels, &error);
  ASSERT_TRUE(regex.has_value()) << error;
  EXPECT_FALSE(regex->is_chain());
  EXPECT_EQ(regex->max_word_length(), -1);

  auto bad = PathExpression::Parse("a..b", labels, &error);
  EXPECT_FALSE(bad.has_value());
  EXPECT_FALSE(error.empty());
}

TEST(PathExpressionTest, UnknownChainLabelMapsToUnknownSymbol) {
  LabelTable labels;
  labels.Intern("a");
  std::string error;
  auto expr = PathExpression::Parse("a.nosuch", labels, &error);
  ASSERT_TRUE(expr.has_value());
  EXPECT_EQ(expr->chain_labels()[1], kUnknownLabel);
}

}  // namespace
}  // namespace dki
