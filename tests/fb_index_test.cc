#include "index/fb_index.h"

#include <gtest/gtest.h>

#include <set>

#include "common/random.h"
#include "index/one_index.h"
#include "query/evaluator.h"
#include "tests/test_util.h"

namespace dki {
namespace {

// Reference forward-stability check: for blocks A, B, either every member
// of B has a child in A's extent set or none does... stability is
// Succ-based: B ⊆ Pred(A) or disjoint. We verify both directions directly.
void ExpectStableBothWays(const DataGraph& g, const Partition& p) {
  std::vector<std::vector<NodeId>> members(static_cast<size_t>(p.num_blocks));
  for (NodeId n = 0; n < g.NumNodes(); ++n) {
    members[static_cast<size_t>(p.block_of[static_cast<size_t>(n)])]
        .push_back(n);
  }
  for (int32_t a = 0; a < p.num_blocks; ++a) {
    std::set<NodeId> succ, pred;
    for (NodeId u : members[static_cast<size_t>(a)]) {
      for (NodeId v : g.children(u)) succ.insert(v);
      for (NodeId v : g.parents(u)) pred.insert(v);
    }
    for (int32_t b = 0; b < p.num_blocks; ++b) {
      size_t in_succ = 0, in_pred = 0;
      for (NodeId v : members[static_cast<size_t>(b)]) {
        in_succ += succ.count(v);
        in_pred += pred.count(v);
      }
      size_t size = members[static_cast<size_t>(b)].size();
      EXPECT_TRUE(in_succ == 0 || in_succ == size)
          << "backward-unstable: block " << b << " vs splitter " << a;
      EXPECT_TRUE(in_pred == 0 || in_pred == size)
          << "forward-unstable: block " << b << " vs splitter " << a;
    }
  }
}

TEST(FbIndexTest, StableInBothDirections) {
  Rng rng(311);
  for (int trial = 0; trial < 8; ++trial) {
    DataGraph g = testing_util::RandomGraph(60 + trial * 10, 4, 12, &rng);
    Partition p = FbIndex::ComputePartition(g);
    ExpectStableBothWays(g, p);
  }
}

TEST(FbIndexTest, RefinesTheOneIndex) {
  Rng rng(313);
  DataGraph g = testing_util::RandomGraph(150, 4, 30, &rng);
  Partition fb = FbIndex::ComputePartition(g);
  Partition one = ComputeFullBisimulation(g);
  EXPECT_GE(fb.num_blocks, one.num_blocks);
  // Same F&B block implies same 1-index block.
  std::unordered_map<int32_t, int32_t> map;
  for (NodeId n = 0; n < g.NumNodes(); ++n) {
    auto [it, inserted] = map.emplace(fb.block_of[static_cast<size_t>(n)],
                                      one.block_of[static_cast<size_t>(n)]);
    EXPECT_EQ(it->second, one.block_of[static_cast<size_t>(n)]);
  }
}

TEST(FbIndexTest, CoarsestAmongBothWayStablePartitions) {
  // Refining the F&B partition once more in either direction is a no-op.
  Rng rng(317);
  DataGraph g = testing_util::RandomGraph(100, 3, 20, &rng);
  Partition p = FbIndex::ComputePartition(g);
  std::vector<bool> all(static_cast<size_t>(p.num_blocks), true);
  EXPECT_EQ(RefineOnce(g, p, all).num_blocks, p.num_blocks);
  ReverseGraphView reversed(&g);
  EXPECT_EQ(RefineOnce(reversed, p, all).num_blocks, p.num_blocks);
}

TEST(FbIndexTest, AnswersIncomingAndOutgoingQueriesExactly) {
  Rng rng(331);
  DataGraph g = testing_util::RandomGraph(120, 4, 25, &rng);
  IndexGraph fb = FbIndex::Build(&g);
  std::string error;
  ASSERT_TRUE(fb.ValidatePartition(&error)) << error;
  ASSERT_TRUE(fb.ValidateEdges(&error)) << error;

  for (int i = 0; i < 15; ++i) {
    int len = static_cast<int>(rng.UniformInt(1, 4));
    std::string text = testing_util::RandomChainQuery(g, len, &rng);
    PathExpression q = testing_util::MustParse(text, g.labels());
    EvalStats stats;
    EXPECT_EQ(EvaluateOnIndex(fb, q, &stats), EvaluateOnDataGraph(g, q))
        << text;
    // Infinite local similarity: never any validation.
    EXPECT_EQ(stats.uncertain_index_nodes, 0) << text;
  }
}

TEST(FbIndexTest, ForwardSiblingsDistinguished) {
  // Two `a` nodes with the same incoming paths but different *outgoing*
  // structure: bisimilar for the 1-index, split by the F&B index.
  DataGraph g;
  NodeId a1 = g.AddNode("a");
  NodeId a2 = g.AddNode("a");
  NodeId b = g.AddNode("b");
  g.AddEdge(g.root(), a1);
  g.AddEdge(g.root(), a2);
  g.AddEdge(a1, b);  // only a1 has a b child
  Partition one = ComputeFullBisimulation(g);
  Partition fb = FbIndex::ComputePartition(g);
  EXPECT_EQ(one.block_of[static_cast<size_t>(a1)],
            one.block_of[static_cast<size_t>(a2)]);
  EXPECT_NE(fb.block_of[static_cast<size_t>(a1)],
            fb.block_of[static_cast<size_t>(a2)]);
}

TEST(FbIndexTest, TreeWithUniformStructureStaysCoarse) {
  DataGraph g;
  for (int i = 0; i < 5; ++i) {
    NodeId a = g.AddNode("a");
    g.AddEdge(g.root(), a);
    NodeId b = g.AddNode("b");
    g.AddEdge(a, b);
  }
  Partition fb = FbIndex::ComputePartition(g);
  EXPECT_EQ(fb.num_blocks, 3);  // ROOT, {a...}, {b...}
}

}  // namespace
}  // namespace dki
