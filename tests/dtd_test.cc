#include <gtest/gtest.h>

#include <string>

#include "dtd/dtd_generator.h"
#include "dtd/dtd_parser.h"
#include "dtd/dtd_validator.h"
#include "graph/graph_algos.h"
#include "index/dk_index.h"
#include "query/evaluator.h"
#include "tests/test_util.h"
#include "xml/xml_to_graph.h"
#include "xml/xml_writer.h"

namespace dki {
namespace {

DtdSchema MustParseDtd(const std::string& text) {
  DtdSchema schema;
  std::string error;
  bool ok = ParseDtd(text, &schema, &error);
  EXPECT_TRUE(ok) << error;
  return schema;
}

TEST(DtdParserTest, ElementKinds) {
  DtdSchema schema = MustParseDtd(R"(
    <!ELEMENT a (b, c?, (d | e)*)>
    <!ELEMENT b EMPTY>
    <!ELEMENT c ANY>
    <!ELEMENT d (#PCDATA)>
    <!ELEMENT e (#PCDATA | b | d)*>
  )");
  ASSERT_EQ(schema.declarations.size(), 5u);
  EXPECT_EQ(schema.Find("a")->content.kind, ContentModel::Kind::kChildren);
  EXPECT_EQ(AstToString(*schema.Find("a")->content.model),
            "((b.c?).(d|e)*)");
  EXPECT_EQ(schema.Find("b")->content.kind, ContentModel::Kind::kEmpty);
  EXPECT_EQ(schema.Find("c")->content.kind, ContentModel::Kind::kAny);
  EXPECT_EQ(schema.Find("d")->content.kind, ContentModel::Kind::kPcdata);
  EXPECT_EQ(schema.Find("e")->content.kind, ContentModel::Kind::kMixed);
  EXPECT_EQ(AstToString(*schema.Find("e")->content.model), "(b|d)");
}

TEST(DtdParserTest, Attributes) {
  DtdSchema schema = MustParseDtd(R"(
    <!ELEMENT item EMPTY>
    <!ATTLIST item id       ID              #REQUIRED
                   ref      IDREF           #IMPLIED
                   refs     IDREFS          #IMPLIED
                   note     CDATA           "default text"
                   kind     (large | small) #REQUIRED
                   version  CDATA           #FIXED "1.0">
  )");
  const ElementDecl* item = schema.Find("item");
  ASSERT_NE(item, nullptr);
  ASSERT_EQ(item->attributes.size(), 6u);
  EXPECT_EQ(item->attributes[0].type, AttributeDecl::Type::kId);
  EXPECT_EQ(item->attributes[0].default_kind,
            AttributeDecl::Default::kRequired);
  EXPECT_EQ(item->attributes[1].type, AttributeDecl::Type::kIdref);
  EXPECT_EQ(item->attributes[2].type, AttributeDecl::Type::kIdrefs);
  EXPECT_EQ(item->attributes[3].default_value, "default text");
  EXPECT_EQ(item->attributes[4].enum_values,
            (std::vector<std::string>{"large", "small"}));
  EXPECT_EQ(item->attributes[5].default_kind, AttributeDecl::Default::kFixed);
  EXPECT_EQ(item->attributes[5].default_value, "1.0");
}

TEST(DtdParserTest, CommentsAndEntitiesSkipped) {
  DtdSchema schema = MustParseDtd(R"dtd(
    <!-- a comment with <!ELEMENT fake (a)> inside -->
    <!ENTITY % shared "(#PCDATA)">
    <!ELEMENT real EMPTY>
  )dtd");
  EXPECT_EQ(schema.Find("fake"), nullptr);
  EXPECT_NE(schema.Find("real"), nullptr);
}

TEST(DtdParserTest, Errors) {
  DtdSchema schema;
  std::string error;
  EXPECT_FALSE(ParseDtd("<!ELEMENT a (b", &schema, &error));
  EXPECT_FALSE(ParseDtd("<!ELEMENT a >", &schema, &error));
  EXPECT_FALSE(ParseDtd("<!ATTLIST a x BOGUS #IMPLIED>", &schema, &error));
  EXPECT_FALSE(ParseDtd("random text", &schema, &error));
}

TEST(DtdParserTest, BundledDtdsParse) {
  for (const char* path : {"data/auction.dtd", "data/nasa.dtd"}) {
    DtdSchema schema;
    std::string error;
    ASSERT_TRUE(ParseDtdFile(path, &schema, &error)) << path << ": " << error;
    EXPECT_GT(schema.declarations.size(), 30u) << path;
  }
}

TEST(DtdGeneratorTest, GeneratedDocumentsValidate) {
  DtdSchema schema;
  std::string error;
  ASSERT_TRUE(ParseDtdFile("data/auction.dtd", &schema, &error)) << error;
  DtdGeneratorOptions options;
  options.element_budget = 8000;
  options.max_repeats = 20;
  options.p_more = 0.9;
  options.seed = 7;
  options.idref_targets = {
      {"incategory/category", "category"}, {"interest/category", "category"},
      {"watch/open_auction", "open_auction"}, {"personref/person", "person"},
      {"seller/person", "person"},         {"buyer/person", "person"},
      {"author/person", "person"},         {"itemref/item", "item"},
      {"edge/from", "category"},           {"edge/to", "category"},
  };
  XmlDocument doc;
  ASSERT_TRUE(GenerateFromDtd(schema, "site", options, &doc, &error)) << error;
  EXPECT_GT(doc.root->CountElements(), 800);

  DtdValidator validator(&schema);
  std::vector<std::string> violations;
  bool valid = validator.Validate(doc, &violations);
  EXPECT_TRUE(valid && violations.empty())
      << violations.size() << " violations, first: "
      << (violations.empty() ? std::string() : violations[0]);
}

TEST(DtdGeneratorTest, NasaDtdRoundTrip) {
  DtdSchema schema;
  std::string error;
  ASSERT_TRUE(ParseDtdFile("data/nasa.dtd", &schema, &error)) << error;
  DtdGeneratorOptions options;
  options.element_budget = 2000;
  options.seed = 11;
  XmlDocument doc;
  ASSERT_TRUE(GenerateFromDtd(schema, "datasets", options, &doc, &error))
      << error;
  DtdValidator validator(&schema);
  std::vector<std::string> violations;
  EXPECT_TRUE(validator.Validate(doc, &violations))
      << (violations.empty() ? "" : violations[0]);

  // The generated text parses back and indexes end to end.
  std::string xml = WriteXml(doc);
  XmlToGraphResult loaded;
  XmlToGraphOptions graph_options;
  graph_options.idref_attributes = {"ref"};
  graph_options.idref_suffix_heuristic = false;
  ASSERT_TRUE(LoadXmlAsGraph(xml, graph_options, &loaded, &error)) << error;
  EXPECT_TRUE(AllReachableFromRoot(loaded.graph));

  LabelRequirements reqs;
  LabelId title = loaded.graph.labels().Find("title");
  if (title != kInvalidLabel) reqs[title] = 2;
  DkIndex dk = DkIndex::Build(&loaded.graph, reqs);
  std::string invariant;
  EXPECT_TRUE(dk.index().ValidateDkConstraint(&invariant)) << invariant;
}

TEST(DtdGeneratorTest, BudgetBoundsDocumentSize) {
  DtdSchema schema = MustParseDtd(R"(
    <!ELEMENT root (branch*)>
    <!ELEMENT branch (leaf, branch?)>
    <!ELEMENT leaf (#PCDATA)>
  )");
  DtdGeneratorOptions options;
  options.element_budget = 50;
  options.p_more = 0.95;     // try hard to blow up
  options.p_optional = 0.95;
  options.max_repeats = 20;
  XmlDocument doc;
  std::string error;
  ASSERT_TRUE(GenerateFromDtd(schema, "root", options, &doc, &error)) << error;
  // Budget plus the minimal completions of in-flight expansions: well under
  // twice the budget for this schema.
  EXPECT_LE(doc.root->CountElements(), 120);
  DtdValidator validator(&schema);
  std::vector<std::string> violations;
  EXPECT_TRUE(validator.Validate(doc, &violations))
      << (violations.empty() ? "" : violations[0]);
}

TEST(DtdGeneratorTest, RejectsRequiredRecursion) {
  DtdSchema schema = MustParseDtd(R"(
    <!ELEMENT a (b)>
    <!ELEMENT b (a)>
  )");
  XmlDocument doc;
  std::string error;
  EXPECT_FALSE(GenerateFromDtd(schema, "a", {}, &doc, &error));
  EXPECT_NE(error.find("finite"), std::string::npos);
}

TEST(DtdGeneratorTest, RejectsUnknownRoot) {
  DtdSchema schema = MustParseDtd("<!ELEMENT a EMPTY>");
  XmlDocument doc;
  std::string error;
  EXPECT_FALSE(GenerateFromDtd(schema, "nosuch", {}, &doc, &error));
}

TEST(DtdGeneratorTest, Deterministic) {
  DtdSchema schema;
  std::string error;
  ASSERT_TRUE(ParseDtdFile("data/nasa.dtd", &schema, &error)) << error;
  DtdGeneratorOptions options;
  options.element_budget = 500;
  XmlDocument a, b;
  ASSERT_TRUE(GenerateFromDtd(schema, "datasets", options, &a, &error));
  ASSERT_TRUE(GenerateFromDtd(schema, "datasets", options, &b, &error));
  EXPECT_EQ(WriteXml(a), WriteXml(b));
  options.seed = 2;
  XmlDocument c;
  ASSERT_TRUE(GenerateFromDtd(schema, "datasets", options, &c, &error));
  EXPECT_NE(WriteXml(a), WriteXml(c));
}

TEST(DtdValidatorTest, CatchesViolations) {
  DtdSchema schema = MustParseDtd(R"(
    <!ELEMENT root (a, b?)>
    <!ELEMENT a EMPTY>
    <!ATTLIST a id ID #REQUIRED kind (x | y) #IMPLIED>
    <!ELEMENT b (#PCDATA)>
  )");
  DtdValidator validator(&schema);

  struct Case {
    const char* xml;
    const char* expect;  // substring of the first violation
  };
  const Case cases[] = {
      {"<root><b>t</b></root>", "violates its content model"},
      {"<root><a id='1'/><b>t</b><b>t</b></root>", "content model"},
      {"<root><a/></root>", "missing required attribute"},
      {"<root><a id='1' kind='z'/></root>", "enumeration"},
      {"<root><a id='1' bogus='v'/></root>", "undeclared attribute"},
      {"<root><c/></root>", "undeclared element"},
      {"<root><a id='1'/><b><a id='2'/></b></root>", "child elements"},
  };
  for (const Case& c : cases) {
    XmlDocument doc;
    std::string error;
    ASSERT_TRUE(ParseXml(c.xml, &doc, &error)) << c.xml;
    std::vector<std::string> violations;
    EXPECT_FALSE(validator.Validate(doc, &violations)) << c.xml;
    ASSERT_FALSE(violations.empty()) << c.xml;
    EXPECT_NE(violations[0].find(c.expect), std::string::npos)
        << c.xml << " -> " << violations[0];
  }
  // And a valid document passes.
  XmlDocument doc;
  std::string error;
  ASSERT_TRUE(
      ParseXml("<root><a id='1' kind='x'/><b>t</b></root>", &doc, &error));
  std::vector<std::string> violations;
  EXPECT_TRUE(validator.Validate(doc, &violations))
      << (violations.empty() ? "" : violations[0]);
}

TEST(DtdValidatorTest, IdUniquenessAndIdrefResolution) {
  DtdSchema schema = MustParseDtd(R"(
    <!ELEMENT root (a*)>
    <!ELEMENT a EMPTY>
    <!ATTLIST a id ID #IMPLIED ref IDREF #IMPLIED>
  )");
  DtdValidator validator(&schema);
  XmlDocument doc;
  std::string error;
  ASSERT_TRUE(ParseXml(
      "<root><a id='x'/><a id='x'/><a ref='missing'/></root>", &doc, &error));
  std::vector<std::string> violations;
  EXPECT_FALSE(validator.Validate(doc, &violations));
  bool saw_dup = false, saw_dangling = false;
  for (const std::string& v : violations) {
    saw_dup |= v.find("duplicate ID") != std::string::npos;
    saw_dangling |= v.find("no matching ID") != std::string::npos;
  }
  EXPECT_TRUE(saw_dup);
  EXPECT_TRUE(saw_dangling);
}

}  // namespace
}  // namespace dki
