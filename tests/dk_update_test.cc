#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <unordered_map>

#include "common/random.h"
#include "graph/graph_algos.h"
#include "index/dk_index.h"
#include "query/evaluator.h"
#include "tests/test_util.h"

namespace dki {
namespace {

// The Figure 3 setting: two c-parents with different grandparents, so the
// d-block's local similarity survives at exactly 1 after a new c -> d edge.
//
//   ROOT -> a -> c1 -> d1 -> e
//   ROOT -> b -> c2 -> d2
//
// req(e) = 3 forces (by broadcast) k(d*) = 2, k(c*) = 1, k(a) = k(b) = 0.
struct Figure3 {
  DataGraph g;
  NodeId a, b, c1, c2, d1, d2, e;
  std::unique_ptr<DkIndex> dk;

  Figure3() {
    a = g.AddNode("a");
    b = g.AddNode("b");
    c1 = g.AddNode("c");
    c2 = g.AddNode("c");
    d1 = g.AddNode("d");
    d2 = g.AddNode("d");
    e = g.AddNode("e");
    g.AddEdge(g.root(), a);
    g.AddEdge(g.root(), b);
    g.AddEdge(a, c1);
    g.AddEdge(b, c2);
    g.AddEdge(c1, d1);
    g.AddEdge(c2, d2);
    g.AddEdge(d1, e);
  }

  void Build() {
    LabelRequirements reqs;
    reqs[g.labels().Find("e")] = 3;
    dk = std::make_unique<DkIndex>(DkIndex::Build(&g, reqs));
  }
};

TEST(DkUpdateTest, Figure3ConstructionShape) {
  Figure3 f;
  f.Build();
  const IndexGraph& index = f.dk->index();
  // c1/c2 split at 1-bisimilarity (different parent labels), d1/d2 split at
  // 2-bisimilarity (different c-parents).
  EXPECT_NE(index.index_of(f.c1), index.index_of(f.c2));
  EXPECT_NE(index.index_of(f.d1), index.index_of(f.d2));
  EXPECT_EQ(index.k(index.index_of(f.d2)), 2);
  EXPECT_EQ(index.k(index.index_of(f.c1)), 1);
  EXPECT_EQ(index.k(index.index_of(f.e)), 3);
}

TEST(DkUpdateTest, Figure3EdgeAdditionKeepsSimilarityOne) {
  // New edge c1 -> d2: d2 still has only c-labeled parents, so Algorithm 4
  // keeps k = 1 (level-2 paths differ: a.c vs b.c), exactly the paper's
  // Figure 3 narrative.
  Figure3 f;
  f.Build();
  IndexNodeId u_node = f.dk->index().index_of(f.c1);
  IndexNodeId v_node = f.dk->index().index_of(f.d2);
  int64_t expanded = 0;
  EXPECT_EQ(f.dk->UpdateLocalSimilarity(u_node, v_node, &expanded), 1);

  auto stats = f.dk->AddEdge(f.c1, f.d2);
  EXPECT_EQ(stats.new_local_similarity, 1);
  EXPECT_EQ(f.dk->index().k(v_node), 1);
  std::string error;
  EXPECT_TRUE(f.dk->index().ValidateDkConstraint(&error)) << error;
  EXPECT_TRUE(f.dk->index().ValidateEdges(&error)) << error;
}

TEST(DkUpdateTest, Figure3EdgeAdditionWorstCaseDropsToZero) {
  // New edge a -> d2: label a never was a parent of d2's block, so k drops
  // to 0, and the demotion wave caps descendants.
  Figure3 f;
  f.Build();
  IndexNodeId u_node = f.dk->index().index_of(f.a);
  IndexNodeId v_node = f.dk->index().index_of(f.d2);
  EXPECT_EQ(f.dk->UpdateLocalSimilarity(u_node, v_node, nullptr), 0);
  f.dk->AddEdge(f.a, f.d2);
  EXPECT_EQ(f.dk->index().k(v_node), 0);
  std::string error;
  EXPECT_TRUE(f.dk->index().ValidateDkConstraint(&error)) << error;
}

TEST(DkUpdateTest, DemotionWavePropagatesToDescendants) {
  Figure3 f;
  f.Build();
  // Drop d1's block to 0 via a worst-case edge; e (child of d1) must fall
  // from 3 to at most 1.
  f.dk->AddEdge(f.b, f.d1);
  const IndexGraph& index = f.dk->index();
  EXPECT_EQ(index.k(index.index_of(f.d1)), 0);
  EXPECT_LE(index.k(index.index_of(f.e)), 1);
  std::string error;
  EXPECT_TRUE(index.ValidateDkConstraint(&error)) << error;
}

TEST(DkUpdateTest, EdgeAdditionNeverChangesIndexSize) {
  Rng rng(101);
  DataGraph g = testing_util::RandomGraph(150, 4, 30, &rng);
  LabelRequirements reqs;
  for (int i = 0; i < 3; ++i) {
    reqs[static_cast<LabelId>(rng.UniformInt(2, g.labels().size() - 1))] = 3;
  }
  DkIndex dk = DkIndex::Build(&g, reqs);
  int64_t size = dk.index().NumIndexNodes();
  for (int i = 0; i < 30; ++i) {
    NodeId u = static_cast<NodeId>(rng.UniformInt(1, g.NumNodes() - 1));
    NodeId v = static_cast<NodeId>(rng.UniformInt(1, g.NumNodes() - 1));
    dk.AddEdge(u, v);
    EXPECT_EQ(dk.index().NumIndexNodes(), size);
  }
}

TEST(DkUpdateTest, UpdatesPreserveInvariantsAndCorrectness) {
  Rng rng(103);
  for (int trial = 0; trial < 5; ++trial) {
    DataGraph g = testing_util::RandomGraph(80, 4, 15, &rng);
    LabelRequirements reqs;
    for (int i = 0; i < 2; ++i) {
      reqs[static_cast<LabelId>(rng.UniformInt(2, g.labels().size() - 1))] =
          static_cast<int>(rng.UniformInt(2, 4));
    }
    DkIndex dk = DkIndex::Build(&g, reqs);
    for (int i = 0; i < 10; ++i) {
      NodeId u = static_cast<NodeId>(rng.UniformInt(1, g.NumNodes() - 1));
      NodeId v = static_cast<NodeId>(rng.UniformInt(1, g.NumNodes() - 1));
      dk.AddEdge(u, v);
      std::string error;
      ASSERT_TRUE(dk.index().ValidatePartition(&error)) << error;
      ASSERT_TRUE(dk.index().ValidateEdges(&error)) << error;
      ASSERT_TRUE(dk.index().ValidateDkConstraint(&error)) << error;
    }
    for (int i = 0; i < 15; ++i) {
      int len = static_cast<int>(rng.UniformInt(1, 4));
      std::string text = testing_util::RandomChainQuery(g, len, &rng);
      PathExpression q = testing_util::MustParse(text, g.labels());
      EXPECT_EQ(EvaluateOnIndex(dk.index(), q), EvaluateOnDataGraph(g, q))
          << text;
    }
  }
}

TEST(DkUpdateTest, LocalSimilaritiesStaySound) {
  // Property 1 of the D(k)-index, re-checked after updates: extent members
  // of a node with similarity k share identical incoming label-path sets up
  // to length k (in edges).
  Rng rng(107);
  DataGraph g = testing_util::RandomGraph(60, 3, 10, &rng);
  LabelRequirements reqs;
  reqs[static_cast<LabelId>(2)] = 3;
  reqs[static_cast<LabelId>(3)] = 2;
  DkIndex dk = DkIndex::Build(&g, reqs);
  for (int i = 0; i < 8; ++i) {
    NodeId u = static_cast<NodeId>(rng.UniformInt(1, g.NumNodes() - 1));
    NodeId v = static_cast<NodeId>(rng.UniformInt(1, g.NumNodes() - 1));
    dk.AddEdge(u, v);
  }
  const IndexGraph& index = dk.index();
  for (IndexNodeId n = 0; n < index.NumIndexNodes(); ++n) {
    if (index.extent(n).size() < 2) continue;
    int k = std::min(index.k(n), 3);
    for (int edges = 1; edges <= k; ++edges) {
      std::set<std::vector<LabelId>> expected;
      bool first = true;
      for (NodeId member : index.extent(n)) {
        auto paths = IncomingLabelPaths(g, member, edges + 1, 5000);
        std::set<std::vector<LabelId>> got(paths.begin(), paths.end());
        if (first) {
          expected = std::move(got);
          first = false;
        } else {
          EXPECT_EQ(got, expected)
              << "index node " << n << " k=" << index.k(n)
              << " differs at path length " << edges;
        }
      }
    }
  }
}

TEST(DkUpdateTest, DuplicateEdgeIsNoOp) {
  Figure3 f;
  f.Build();
  int k_before = f.dk->index().k(f.dk->index().index_of(f.d1));
  auto stats = f.dk->AddEdge(f.c1, f.d1);  // edge already exists
  EXPECT_EQ(stats.index_nodes_touched, 0);
  EXPECT_EQ(f.dk->index().k(f.dk->index().index_of(f.d1)), k_before);
}

TEST(DkUpdateTest, SubgraphAdditionMatchesFreshConstruction) {
  Rng rng(109);
  for (int trial = 0; trial < 5; ++trial) {
    DataGraph g = testing_util::RandomGraph(60, 4, 10, &rng);
    DataGraph h = testing_util::RandomGraph(25, 4, 5, &rng);
    LabelRequirements reqs;
    reqs[static_cast<LabelId>(rng.UniformInt(2, g.labels().size() - 1))] =
        static_cast<int>(rng.UniformInt(1, 3));

    // Incremental: Algorithm 3.
    DataGraph g_inc = g;
    DkIndex dk = DkIndex::Build(&g_inc, reqs);
    std::vector<NodeId> mapping = dk.AddSubgraph(h);

    // Fresh: copy H into a copy of G by hand, then build from scratch. The
    // requirement labels keep their ids (G's label table is a prefix).
    DataGraph g_fresh = g;
    {
      std::vector<NodeId> node_map(static_cast<size_t>(h.NumNodes()));
      node_map[0] = g_fresh.root();
      for (NodeId n = 1; n < h.NumNodes(); ++n) {
        node_map[static_cast<size_t>(n)] =
            g_fresh.AddNode(h.labels().Name(h.label(n)));
      }
      for (NodeId a = 0; a < h.NumNodes(); ++a) {
        for (NodeId b : h.children(a)) {
          g_fresh.AddEdge(node_map[static_cast<size_t>(a)],
                          node_map[static_cast<size_t>(b)]);
        }
      }
    }
    DkIndex fresh = DkIndex::Build(&g_fresh, reqs);

    // Theorem 2: identical partitions and local similarities.
    ASSERT_EQ(g_inc.NumNodes(), g_fresh.NumNodes());
    EXPECT_EQ(dk.index().NumIndexNodes(), fresh.index().NumIndexNodes())
        << "trial " << trial;
    std::unordered_map<IndexNodeId, IndexNodeId> block_map;
    for (NodeId n = 0; n < g_inc.NumNodes(); ++n) {
      IndexNodeId a = dk.index().index_of(n);
      IndexNodeId b = fresh.index().index_of(n);
      auto [it, inserted] = block_map.emplace(a, b);
      EXPECT_EQ(it->second, b) << "partition mismatch at node " << n;
      EXPECT_EQ(dk.index().k(a), fresh.index().k(b));
    }
    std::string error;
    ASSERT_TRUE(dk.index().ValidatePartition(&error)) << error;
    ASSERT_TRUE(dk.index().ValidateEdges(&error)) << error;
    ASSERT_TRUE(dk.index().ValidateDkConstraint(&error)) << error;
    (void)mapping;
  }
}

TEST(DkUpdateTest, SubgraphAdditionThenQueriesAreCorrect) {
  Rng rng(113);
  DataGraph g = testing_util::RandomGraph(80, 4, 15, &rng);
  DataGraph h = testing_util::RandomGraph(30, 4, 5, &rng);
  LabelRequirements reqs;
  reqs[2] = 2;
  DkIndex dk = DkIndex::Build(&g, reqs);
  dk.AddSubgraph(h);
  for (int i = 0; i < 15; ++i) {
    int len = static_cast<int>(rng.UniformInt(1, 4));
    std::string text = testing_util::RandomChainQuery(g, len, &rng);
    PathExpression q = testing_util::MustParse(text, g.labels());
    EXPECT_EQ(EvaluateOnIndex(dk.index(), q), EvaluateOnDataGraph(g, q))
        << text;
  }
}

TEST(DkUpdateTest, DemotionWaveCountsDistinctNodesOnDiamondDag) {
  // Regression for the wave's work counter: index_nodes_touched must be the
  // number of DISTINCT index nodes the wave demoted (plus the start node),
  // however many converging diamond paths reach each of them — the old
  // implementation charged one per queue pop.
  DataGraph g;
  NodeId src = g.AddNode("s");
  g.AddEdge(g.root(), src);
  NodeId top = g.AddNode("t");
  g.AddEdge(g.root(), top);
  NodeId cur = top;
  const int kDiamonds = 6;
  for (int i = 0; i < kDiamonds; ++i) {
    std::string tier = std::to_string(i);
    NodeId l = g.AddNode("l" + tier);
    NodeId r = g.AddNode("r" + tier);
    NodeId join = g.AddNode("j" + tier);
    g.AddEdge(cur, l);
    g.AddEdge(cur, r);
    g.AddEdge(l, join);
    g.AddEdge(r, join);
    cur = join;
  }
  // A deep requirement on the bottom label broadcasts high similarities all
  // the way up, so the wave started by the low-k source floods every tier.
  LabelRequirements reqs;
  reqs[g.label(cur)] = 4 * kDiamonds + 4;
  DkIndex dk = DkIndex::Build(&g, reqs);

  std::vector<int> before(static_cast<size_t>(dk.index().NumIndexNodes()));
  for (IndexNodeId i = 0; i < dk.index().NumIndexNodes(); ++i) {
    before[static_cast<size_t>(i)] = dk.index().k(i);
  }
  DkIndex::EdgeUpdateStats stats = dk.AddEdge(src, top);

  // AddEdge never splits index nodes, so ids are comparable across the call.
  int64_t dropped = 0;
  for (IndexNodeId i = 0; i < dk.index().NumIndexNodes(); ++i) {
    if (dk.index().k(i) < before[static_cast<size_t>(i)]) ++dropped;
  }
  IndexNodeId v_node = dk.index().index_of(top);
  int64_t expected =
      dropped +
      (dk.index().k(v_node) < before[static_cast<size_t>(v_node)] ? 0 : 1);
  EXPECT_EQ(stats.index_nodes_touched, expected);
  EXPECT_GT(dropped, kDiamonds);  // the wave really flooded the diamonds
  EXPECT_LE(stats.index_nodes_touched, dk.index().NumIndexNodes());
}

}  // namespace
}  // namespace dki
