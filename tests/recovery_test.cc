// Crash-safety tests for the durability pipeline (serve/wal.h,
// serve/checkpoint.h, QueryServer wiring): WAL encode/append/torn-tail
// units, checkpoint fallback, deterministic simulated crash states for
// every kill point in the pipeline, and randomized fork+SIGKILL trials on
// the paper's two workloads asserting that Recover + replay reproduces
// query results bit-identical to an uncrashed replica of the durable
// prefix.
//
// Why SIGKILL is an honest crash model here: killing the process discards
// user-space state but NOT the OS page cache, so everything the server
// write()'d — synced or not — survives. That is exactly the guarantee the
// WAL's "logged before applied" invariant is defined over; fsync cadence
// only matters for machine-level crashes, which the deterministic
// torn-file tests model instead by truncating/corrupting files directly.

#include <gtest/gtest.h>

#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include "common/random.h"
#include "datagen/nasa_generator.h"
#include "datagen/xmark_generator.h"
#include "graph/data_graph.h"
#include "index/dk_index.h"
#include "io/fs_util.h"
#include "io/serialization.h"
#include "query/evaluator.h"
#include "serve/apply.h"
#include "serve/checkpoint.h"
#include "serve/query_server.h"
#include "serve/wal.h"
#include "tests/test_util.h"

#if defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define DKI_UNDER_TSAN 1
#endif
#endif
#if defined(__SANITIZE_THREAD__)
#define DKI_UNDER_TSAN 1
#endif

namespace dki {
namespace {

std::string FreshDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "dki_recovery_" + name + "_" +
                    std::to_string(::getpid());
  // Start clean: remove any leftovers from a previous run of this test.
  if (PathExists(dir)) {
    std::string cmd = "rm -rf '" + dir + "'";
    EXPECT_EQ(std::system(cmd.c_str()), 0);
  }
  std::string error;
  EXPECT_TRUE(EnsureDir(dir, &error)) << error;
  return dir;
}

std::string MustRead(const std::string& path) {
  std::string contents, error;
  EXPECT_TRUE(ReadFileToString(path, &contents, &error)) << error;
  return contents;
}

void MustWriteRaw(const std::string& path, const std::string& contents) {
  std::string error;
  ASSERT_TRUE(AtomicWriteFile(path, contents, &error)) << error;
}

// ---------------------------------------------------------------------------
// WriteAheadLog units.
// ---------------------------------------------------------------------------

TEST(WalTest, EncodeDecodeRoundTripsAllKinds) {
  DataGraph h;
  NodeId x = h.AddNode("studio");
  h.AddEdge(h.root(), x);

  std::vector<UpdateOp> ops = {UpdateOp::AddEdge(3, 9),
                               UpdateOp::RemoveEdge(-1, 1 << 20),
                               UpdateOp::AddSubgraph(std::move(h))};
  for (size_t i = 0; i < ops.size(); ++i) {
    std::string encoded = WriteAheadLog::EncodeRecord(ops[i], 100 + i);
    ASSERT_GE(encoded.size(), 8u);
    WriteAheadLog::Record record;
    // DecodePayload takes the payload, i.e. everything after the
    // length+crc prefix.
    ASSERT_TRUE(WriteAheadLog::DecodePayload(
        std::string_view(encoded).substr(8), &record));
    EXPECT_EQ(record.seq, 100 + i);
    EXPECT_EQ(record.op.kind, ops[i].kind);
    EXPECT_EQ(record.op.u, ops[i].u);
    EXPECT_EQ(record.op.v, ops[i].v);
    if (ops[i].kind == UpdateOp::Kind::kAddSubgraph) {
      ASSERT_NE(record.op.subgraph, nullptr);
      EXPECT_EQ(record.op.subgraph->NumNodes(), 2);
    }
  }
}

TEST(WalTest, AppendReadAllRoundTrip) {
  std::string dir = FreshDir("wal_roundtrip");
  WriteAheadLog wal(dir + "/wal.log", /*sync_every_n=*/2,
                    /*sync_interval_ms=*/1000);
  std::string error;
  ASSERT_TRUE(wal.Open(&error)) << error;
  for (uint64_t seq = 1; seq <= 5; ++seq) {
    ASSERT_TRUE(wal.Append(UpdateOp::AddEdge(static_cast<NodeId>(seq), 0),
                           seq, &error))
        << error;
  }
  ASSERT_TRUE(wal.Sync(/*force=*/true, &error)) << error;

  std::vector<WriteAheadLog::Record> records;
  bool clean = false;
  ASSERT_TRUE(WriteAheadLog::ReadAll(dir + "/wal.log", &records, &clean,
                                     &error))
      << error;
  EXPECT_TRUE(clean);
  ASSERT_EQ(records.size(), 5u);
  for (uint64_t seq = 1; seq <= 5; ++seq) {
    EXPECT_EQ(records[seq - 1].seq, seq);
    EXPECT_EQ(records[seq - 1].op.u, static_cast<NodeId>(seq));
  }
}

TEST(WalTest, MissingFileIsAnEmptyLog) {
  std::string dir = FreshDir("wal_missing");
  std::vector<WriteAheadLog::Record> records;
  bool clean = false;
  std::string error;
  ASSERT_TRUE(WriteAheadLog::ReadAll(dir + "/nope.log", &records, &clean,
                                     &error));
  EXPECT_TRUE(clean);
  EXPECT_TRUE(records.empty());
}

TEST(WalTest, TornTailYieldsCleanPrefixAndOpenRepairsIt) {
  std::string dir = FreshDir("wal_torn");
  const std::string path = dir + "/wal.log";
  std::string bytes;
  for (uint64_t seq = 1; seq <= 3; ++seq) {
    bytes += WriteAheadLog::EncodeRecord(UpdateOp::AddEdge(1, 2), seq);
  }
  std::string full_record =
      WriteAheadLog::EncodeRecord(UpdateOp::AddEdge(3, 4), 4);
  // Every strict prefix of the 4th record is a torn tail; the reader must
  // return exactly records 1..3 and report the file as not clean.
  for (size_t cut = 1; cut < full_record.size(); ++cut) {
    MustWriteRaw(path, bytes + full_record.substr(0, cut));
    std::vector<WriteAheadLog::Record> records;
    bool clean = true;
    std::string error;
    ASSERT_TRUE(WriteAheadLog::ReadAll(path, &records, &clean, &error))
        << "cut=" << cut << ": " << error;
    EXPECT_FALSE(clean) << "cut=" << cut;
    ASSERT_EQ(records.size(), 3u) << "cut=" << cut;
    EXPECT_EQ(records[2].seq, 3u);
  }

  // Open() truncates the torn tail so subsequent appends extend a clean log.
  MustWriteRaw(path, bytes + full_record.substr(0, full_record.size() / 2));
  WriteAheadLog wal(path, 1, 1000);
  std::string error;
  ASSERT_TRUE(wal.Open(&error)) << error;
  ASSERT_TRUE(wal.Append(UpdateOp::AddEdge(5, 6), 4, &error)) << error;
  ASSERT_TRUE(wal.Sync(true, &error)) << error;
  std::vector<WriteAheadLog::Record> records;
  bool clean = false;
  ASSERT_TRUE(WriteAheadLog::ReadAll(path, &records, &clean, &error));
  EXPECT_TRUE(clean);
  ASSERT_EQ(records.size(), 4u);
  EXPECT_EQ(records[3].op.u, 5);
}

TEST(WalTest, CorruptMiddleRecordStopsTheCleanPrefix) {
  std::string dir = FreshDir("wal_corrupt");
  const std::string path = dir + "/wal.log";
  std::string r1 = WriteAheadLog::EncodeRecord(UpdateOp::AddEdge(1, 2), 1);
  std::string r2 = WriteAheadLog::EncodeRecord(UpdateOp::AddEdge(3, 4), 2);
  std::string r3 = WriteAheadLog::EncodeRecord(UpdateOp::AddEdge(5, 6), 3);
  std::string bytes = r1 + r2 + r3;
  bytes[r1.size() + 9] ^= 0x40;  // flip a payload bit inside record 2
  MustWriteRaw(path, bytes);

  std::vector<WriteAheadLog::Record> records;
  bool clean = true;
  std::string error;
  ASSERT_TRUE(WriteAheadLog::ReadAll(path, &records, &clean, &error));
  EXPECT_FALSE(clean);
  ASSERT_EQ(records.size(), 1u);  // record 3 is unreachable past the damage
  EXPECT_EQ(records[0].seq, 1u);
}

TEST(WalTest, TruncateThroughKeepsOnlyNewerRecords) {
  std::string dir = FreshDir("wal_trunc");
  WriteAheadLog wal(dir + "/wal.log", 1, 1000);
  std::string error;
  ASSERT_TRUE(wal.Open(&error)) << error;
  for (uint64_t seq = 1; seq <= 6; ++seq) {
    ASSERT_TRUE(wal.Append(UpdateOp::AddEdge(static_cast<NodeId>(seq), 0),
                           seq, &error));
  }
  ASSERT_TRUE(wal.TruncateThrough(4, &error)) << error;
  // The append handle survives the rewrite.
  ASSERT_TRUE(wal.Append(UpdateOp::AddEdge(7, 0), 7, &error)) << error;
  ASSERT_TRUE(wal.Sync(true, &error)) << error;

  std::vector<WriteAheadLog::Record> records;
  bool clean = false;
  ASSERT_TRUE(WriteAheadLog::ReadAll(dir + "/wal.log", &records, &clean,
                                     &error));
  EXPECT_TRUE(clean);
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].seq, 5u);
  EXPECT_EQ(records[1].seq, 6u);
  EXPECT_EQ(records[2].seq, 7u);
}

// ---------------------------------------------------------------------------
// CheckpointStore units.
// ---------------------------------------------------------------------------

DkIndex BuildMovieIndex(DataGraph* g) {
  LabelRequirements reqs;
  reqs[g->labels().Find("title")] = 2;
  return DkIndex::Build(g, reqs);
}

TEST(CheckpointTest, WriteLoadRoundTrip) {
  std::string dir = FreshDir("ckpt_roundtrip");
  DataGraph g = testing_util::BuildMovieGraph();
  DkIndex dk = BuildMovieIndex(&g);

  CheckpointStore store(dir);
  std::string error;
  ASSERT_TRUE(store.Write(g, dk.index(), dk.effective_requirements(), 17,
                          &error))
      << error;

  DataGraph loaded_graph;
  uint64_t seq = 0;
  bool used_fallback = true;
  auto loaded = store.LoadNewestValid(&loaded_graph, &seq, &used_fallback,
                                      &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_EQ(seq, 17u);
  EXPECT_FALSE(used_fallback);
  EXPECT_EQ(loaded_graph.NumNodes(), g.NumNodes());
  EXPECT_EQ(loaded->index().NumIndexNodes(), dk.index().NumIndexNodes());
}

TEST(CheckpointTest, RetainsNewestTwoAndExposesSafeTruncationSeq) {
  std::string dir = FreshDir("ckpt_retention");
  DataGraph g = testing_util::BuildMovieGraph();
  DkIndex dk = BuildMovieIndex(&g);
  CheckpointStore store(dir);
  std::string error;
  EXPECT_EQ(store.SafeTruncationSeq(), 0u);
  for (uint64_t seq : {5u, 9u, 14u}) {
    ASSERT_TRUE(store.Write(g, dk.index(), dk.effective_requirements(), seq,
                            &error))
        << error;
  }
  std::vector<CheckpointStore::Info> all = store.List();
  ASSERT_EQ(all.size(), 2u);  // pruned to the newest two
  EXPECT_EQ(all[0].seq, 14u);
  EXPECT_EQ(all[1].seq, 9u);
  // Truncation must preserve the fallback's log suffix: only records the
  // OLDER retained checkpoint already contains may go.
  EXPECT_EQ(store.SafeTruncationSeq(), 9u);
}

TEST(CheckpointTest, CorruptNewestFallsBackToPrevious) {
  std::string dir = FreshDir("ckpt_fallback");
  DataGraph g = testing_util::BuildMovieGraph();
  DkIndex dk = BuildMovieIndex(&g);
  CheckpointStore store(dir);
  std::string error;
  ASSERT_TRUE(store.Write(g, dk.index(), dk.effective_requirements(), 3,
                          &error));
  ASSERT_TRUE(store.Write(g, dk.index(), dk.effective_requirements(), 8,
                          &error));

  // Flip one payload byte in the newest checkpoint: its CRC check must fail
  // and recovery must fall back to seq 3.
  std::vector<CheckpointStore::Info> all = store.List();
  ASSERT_EQ(all[0].seq, 8u);
  std::string contents = MustRead(all[0].path);
  contents[contents.size() - 10] ^= 0x01;
  MustWriteRaw(all[0].path, contents);

  DataGraph loaded_graph;
  uint64_t seq = 0;
  bool used_fallback = false;
  auto loaded = store.LoadNewestValid(&loaded_graph, &seq, &used_fallback,
                                      &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_TRUE(used_fallback);
  EXPECT_EQ(seq, 3u);
  EXPECT_EQ(loaded->index().NumIndexNodes(), dk.index().NumIndexNodes());

  // Both corrupt: recovery reports failure rather than serving garbage.
  std::string c2 = MustRead(all[1].path);
  c2[c2.size() - 10] ^= 0x01;
  MustWriteRaw(all[1].path, c2);
  auto none = store.LoadNewestValid(&loaded_graph, &seq, &used_fallback,
                                    &error);
  EXPECT_FALSE(none.has_value());
  EXPECT_FALSE(error.empty());
}

// ---------------------------------------------------------------------------
// Deterministic crash-state recovery: one test per kill point.
// ---------------------------------------------------------------------------

// Runs a durable server session over `ops`, stops it cleanly, and returns
// the answers to `probe` on the final state. The durability directory is
// left behind for the test to mutate into a crash state.
std::vector<NodeId> RunDurableSession(const std::string& dir,
                                      const DataGraph& original,
                                      const LabelRequirements& reqs,
                                      const std::vector<UpdateOp>& ops,
                                      const std::string& probe) {
  DataGraph g = original;
  DkIndex dk = DkIndex::Build(&g, reqs);
  QueryServer::Options options;
  options.durability.dir = dir;
  options.durability.sync_every_n = 1;
  QueryServer server(dk, options);
  for (const UpdateOp& op : ops) {
    EXPECT_TRUE(op.kind == UpdateOp::Kind::kAddEdge
                    ? server.SubmitAddEdge(op.u, op.v)
                    : server.SubmitRemoveEdge(op.u, op.v));
  }
  server.Flush();
  auto result = server.Evaluate(probe);
  EXPECT_TRUE(result.has_value());
  server.Stop();
  return result.value_or(std::vector<NodeId>{});
}

struct CrashFixture {
  DataGraph original;
  LabelRequirements reqs;
  std::vector<UpdateOp> ops;
  std::string probe;

  static CrashFixture Make(uint64_t seed) {
    CrashFixture f;
    Rng rng(seed);
    f.original = testing_util::RandomGraph(120, 4, 20, &rng);
    f.reqs[static_cast<LabelId>(
        rng.UniformInt(2, f.original.labels().size() - 1))] = 2;
    f.probe = testing_util::RandomChainQuery(f.original, 3, &rng);
    DataGraph track = f.original;
    for (int i = 0; i < 30; ++i) {
      NodeId u =
          static_cast<NodeId>(rng.UniformInt(1, track.NumNodes() - 1));
      NodeId v =
          static_cast<NodeId>(rng.UniformInt(1, track.NumNodes() - 1));
      if (u == v) continue;
      if (track.HasEdge(u, v)) {
        f.ops.push_back(UpdateOp::RemoveEdge(u, v));
        track.RemoveEdge(u, v);
      } else {
        f.ops.push_back(UpdateOp::AddEdge(u, v));
        track.AddEdge(u, v);
      }
    }
    return f;
  }

  // The ground truth after the first `n` ops, via the same apply path.
  std::vector<NodeId> AnswerAfter(size_t n) const {
    DataGraph g = original;
    DkIndex dk = DkIndex::Build(&g, reqs);
    for (size_t i = 0; i < n && i < ops.size(); ++i) {
      ApplyUpdateOp(&dk, ops[i]);
    }
    return EvaluateOnIndex(dk.index(),
                           testing_util::MustParse(probe, g.labels()));
  }
};

TEST(CrashStateTest, CleanShutdownRecoversWithNoReplay) {
  CrashFixture f = CrashFixture::Make(7001);
  std::string dir = FreshDir("crash_clean");
  std::vector<NodeId> served =
      RunDurableSession(dir, f.original, f.reqs, f.ops, f.probe);

  DataGraph g;
  RecoveryStats stats;
  std::string error;
  auto dk = RecoverDkIndex(dir, &g, &stats, &error);
  ASSERT_TRUE(dk.has_value()) << error;
  // Clean shutdown checkpoints the final state, so nothing replays.
  EXPECT_EQ(stats.replayed_ops, 0);
  EXPECT_FALSE(stats.used_fallback);
  EXPECT_EQ(stats.last_seq, f.ops.size());
  EXPECT_EQ(EvaluateOnIndex(dk->index(),
                            testing_util::MustParse(f.probe, g.labels())),
            served);
  std::string invariant_error;
  EXPECT_TRUE(dk->index().ValidatePartition(&invariant_error))
      << invariant_error;
}

// Kill point: mid-log-append. The log ends in a torn record; recovery uses
// the clean prefix.
TEST(CrashStateTest, TornLogTailRecoversThePrefix) {
  CrashFixture f = CrashFixture::Make(7002);
  std::string dir = FreshDir("crash_torn_log");

  // Build a crash state by hand: checkpoint at seq 0, then a log holding
  // ops 1..20 with a torn 21st record.
  DataGraph g = f.original;
  DkIndex dk = DkIndex::Build(&g, f.reqs);
  CheckpointStore store(dir);
  std::string error;
  ASSERT_TRUE(store.Write(g, dk.index(), dk.effective_requirements(), 0,
                          &error))
      << error;
  std::string bytes;
  for (size_t i = 0; i < 20; ++i) {
    bytes += WriteAheadLog::EncodeRecord(f.ops[i], i + 1);
  }
  std::string torn = WriteAheadLog::EncodeRecord(f.ops[20], 21);
  bytes += torn.substr(0, torn.size() - 3);
  MustWriteRaw(dir + "/wal.log", bytes);

  DataGraph rg;
  RecoveryStats stats;
  auto recovered = RecoverDkIndex(dir, &rg, &stats, &error);
  ASSERT_TRUE(recovered.has_value()) << error;
  EXPECT_TRUE(stats.log_tail_torn);
  EXPECT_EQ(stats.replayed_ops + stats.invalid_ops, 20);
  EXPECT_EQ(stats.last_seq, 20u);
  EXPECT_EQ(EvaluateOnIndex(recovered->index(),
                            testing_util::MustParse(f.probe, rg.labels())),
            f.AnswerAfter(20));
}

// Kill point: mid-checkpoint-write. The torn temp file must be ignored.
TEST(CrashStateTest, PartialCheckpointTempIsIgnored) {
  CrashFixture f = CrashFixture::Make(7003);
  std::string dir = FreshDir("crash_ckpt_tmp");
  std::vector<NodeId> served =
      RunDurableSession(dir, f.original, f.reqs, f.ops, f.probe);

  // A crashed checkpointer leaves a half-written temp file behind.
  MustWriteRaw(dir + "/checkpoint-999.dki.tmp",
               "dki-checkpoint v1\nseq 999\npayload_byt");

  DataGraph g;
  RecoveryStats stats;
  std::string error;
  auto dk = RecoverDkIndex(dir, &g, &stats, &error);
  ASSERT_TRUE(dk.has_value()) << error;
  EXPECT_EQ(stats.last_seq, f.ops.size());
  EXPECT_EQ(EvaluateOnIndex(dk->index(),
                            testing_util::MustParse(f.probe, g.labels())),
            served);
}

// Kill point: complete checkpoint written but the rename never happened.
// Same outcome: the .tmp name is not a checkpoint.
TEST(CrashStateTest, UnrenamedCompleteCheckpointIsIgnored) {
  CrashFixture f = CrashFixture::Make(7004);
  std::string dir = FreshDir("crash_ckpt_unrenamed");
  std::vector<NodeId> served =
      RunDurableSession(dir, f.original, f.reqs, f.ops, f.probe);

  std::vector<CheckpointStore::Info> all = CheckpointStore(dir).List();
  ASSERT_FALSE(all.empty());
  MustWriteRaw(dir + "/checkpoint-999.dki.tmp", MustRead(all[0].path));

  DataGraph g;
  RecoveryStats stats;
  std::string error;
  auto dk = RecoverDkIndex(dir, &g, &stats, &error);
  ASSERT_TRUE(dk.has_value()) << error;
  EXPECT_EQ(stats.last_seq, f.ops.size());
  EXPECT_EQ(EvaluateOnIndex(dk->index(),
                            testing_util::MustParse(f.probe, g.labels())),
            served);
}

// Kill point: between checkpoint rename and log truncation. The log still
// holds records the checkpoint already contains; they must be skipped, and
// applying the remainder must land on the same state.
TEST(CrashStateTest, StaleLogRecordsBelowCheckpointAreSkipped) {
  CrashFixture f = CrashFixture::Make(7005);
  std::string dir = FreshDir("crash_stale_log");

  DataGraph g = f.original;
  DkIndex dk = DkIndex::Build(&g, f.reqs);
  // Apply 1..12 and checkpoint there; the log holds 1..25 (no truncation).
  for (size_t i = 0; i < 12; ++i) ApplyUpdateOp(&dk, f.ops[i]);
  CheckpointStore store(dir);
  std::string error;
  ASSERT_TRUE(store.Write(g, dk.index(), dk.effective_requirements(), 12,
                          &error))
      << error;
  std::string bytes;
  for (size_t i = 0; i < 25; ++i) {
    bytes += WriteAheadLog::EncodeRecord(f.ops[i], i + 1);
  }
  MustWriteRaw(dir + "/wal.log", bytes);

  DataGraph rg;
  RecoveryStats stats;
  auto recovered = RecoverDkIndex(dir, &rg, &stats, &error);
  ASSERT_TRUE(recovered.has_value()) << error;
  EXPECT_EQ(stats.skipped_ops, 12);
  EXPECT_EQ(stats.replayed_ops + stats.invalid_ops, 13);
  EXPECT_EQ(stats.last_seq, 25u);
  EXPECT_EQ(EvaluateOnIndex(recovered->index(),
                            testing_util::MustParse(f.probe, rg.labels())),
            f.AnswerAfter(25));
}

// Kill point: bit rot / torn write on the NEWEST checkpoint, discovered at
// recovery. Fallback to the previous checkpoint plus its longer log suffix
// must land on the same state the newest checkpoint would have given.
TEST(CrashStateTest, CorruptNewestCheckpointFallsBackAndReplays) {
  CrashFixture f = CrashFixture::Make(7006);
  std::string dir = FreshDir("crash_ckpt_corrupt");

  DataGraph g = f.original;
  DkIndex dk = DkIndex::Build(&g, f.reqs);
  CheckpointStore store(dir);
  std::string error;
  // Checkpoints at 10 and 22; log covers 11..30 (truncated through the
  // OLDER checkpoint's seq, exactly as the server's protocol would).
  for (size_t i = 0; i < 10; ++i) ApplyUpdateOp(&dk, f.ops[i]);
  ASSERT_TRUE(store.Write(g, dk.index(), dk.effective_requirements(), 10,
                          &error));
  for (size_t i = 10; i < 22; ++i) ApplyUpdateOp(&dk, f.ops[i]);
  ASSERT_TRUE(store.Write(g, dk.index(), dk.effective_requirements(), 22,
                          &error));
  std::string bytes;
  for (size_t i = 10; i < 30; ++i) {
    bytes += WriteAheadLog::EncodeRecord(f.ops[i], i + 1);
  }
  MustWriteRaw(dir + "/wal.log", bytes);

  std::vector<CheckpointStore::Info> all = store.List();
  ASSERT_EQ(all[0].seq, 22u);
  std::string contents = MustRead(all[0].path);
  contents[contents.size() / 2] ^= 0x20;
  MustWriteRaw(all[0].path, contents);

  DataGraph rg;
  RecoveryStats stats;
  auto recovered = RecoverDkIndex(dir, &rg, &stats, &error);
  ASSERT_TRUE(recovered.has_value()) << error;
  EXPECT_TRUE(stats.used_fallback);
  EXPECT_EQ(stats.checkpoint_seq, 10u);
  EXPECT_EQ(stats.last_seq, 30u);
  EXPECT_EQ(EvaluateOnIndex(recovered->index(),
                            testing_util::MustParse(f.probe, rg.labels())),
            f.AnswerAfter(30));
  std::string invariant_error;
  EXPECT_TRUE(recovered->index().ValidatePartition(&invariant_error))
      << invariant_error;
}

// A gap in the log (lost middle record) must stop replay at the consistent
// prefix rather than apply later ops to the wrong state.
TEST(CrashStateTest, SequenceGapStopsReplayAtConsistentPrefix) {
  CrashFixture f = CrashFixture::Make(7007);
  std::string dir = FreshDir("crash_gap");

  DataGraph g = f.original;
  DkIndex dk = DkIndex::Build(&g, f.reqs);
  CheckpointStore store(dir);
  std::string error;
  ASSERT_TRUE(store.Write(g, dk.index(), dk.effective_requirements(), 0,
                          &error));
  std::string bytes;
  for (size_t i = 0; i < 20; ++i) {
    if (i == 8) continue;  // record 9 lost
    bytes += WriteAheadLog::EncodeRecord(f.ops[i], i + 1);
  }
  MustWriteRaw(dir + "/wal.log", bytes);

  DataGraph rg;
  RecoveryStats stats;
  auto recovered = RecoverDkIndex(dir, &rg, &stats, &error);
  ASSERT_TRUE(recovered.has_value()) << error;
  EXPECT_TRUE(stats.log_tail_torn);
  EXPECT_EQ(stats.last_seq, 8u);
  EXPECT_EQ(EvaluateOnIndex(recovered->index(),
                            testing_util::MustParse(f.probe, rg.labels())),
            f.AnswerAfter(8));
}

// ---------------------------------------------------------------------------
// Randomized fork+SIGKILL fault injection on the paper's two workloads.
// ---------------------------------------------------------------------------

struct Workload {
  std::string name;
  DataGraph original;
  LabelRequirements reqs;
  std::vector<UpdateOp> ops;
  std::vector<std::string> probes;
};

Workload MakeWorkload(const std::string& name, DataGraph graph,
                      uint64_t seed, int num_ops) {
  Workload w;
  w.name = name;
  w.original = std::move(graph);
  Rng rng(seed);
  w.reqs[static_cast<LabelId>(
      rng.UniformInt(2, w.original.labels().size() - 1))] = 2;
  for (int i = 0; i < 3; ++i) {
    w.probes.push_back(testing_util::RandomChainQuery(w.original, 3, &rng));
  }
  DataGraph track = w.original;
  for (int i = 0; i < num_ops; ++i) {
    NodeId u = static_cast<NodeId>(rng.UniformInt(1, track.NumNodes() - 1));
    NodeId v = static_cast<NodeId>(rng.UniformInt(1, track.NumNodes() - 1));
    if (u == v) continue;
    if (track.HasEdge(u, v)) {
      w.ops.push_back(UpdateOp::RemoveEdge(u, v));
      track.RemoveEdge(u, v);
    } else {
      w.ops.push_back(UpdateOp::AddEdge(u, v));
      track.AddEdge(u, v);
    }
  }
  return w;
}

// One trial: fork a child that serves the op stream durably, SIGKILL it at
// a random point, recover in the parent, and assert the recovered state is
// bit-identical (query results + partition validity) to an uncrashed
// replica that applied exactly the durable prefix.
void RunKillTrial(const Workload& w, const std::string& dir,
                  int64_t kill_after_us) {
  ::pid_t pid = ::fork();
  ASSERT_GE(pid, 0) << "fork failed";
  if (pid == 0) {
    // Child: serve the whole stream, then spin so the parent's SIGKILL is
    // the only way out — the child process must never run gtest teardown.
    {
      DataGraph g = w.original;
      DkIndex dk = DkIndex::Build(&g, w.reqs);
      QueryServer::Options options;
      options.durability.dir = dir;
      options.durability.sync_every_n = 8;
      options.durability.checkpoint_interval_ms = 5;
      options.max_batch = 4;
      QueryServer server(dk, options);
      for (const UpdateOp& op : w.ops) {
        bool ok = op.kind == UpdateOp::Kind::kAddEdge
                      ? server.SubmitAddEdge(op.u, op.v)
                      : server.SubmitRemoveEdge(op.u, op.v);
        if (!ok) ::_exit(2);
        // Pace the stream so the kill lands at a nontrivial point.
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
      server.Flush();
      // Deliberately no Stop(): park until killed, mid-flight state intact.
      for (;;) std::this_thread::sleep_for(std::chrono::seconds(1));
    }
  }
  std::this_thread::sleep_for(std::chrono::microseconds(kill_after_us));
  ASSERT_EQ(::kill(pid, SIGKILL), 0);
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL)
      << "child exited on its own (status " << status
      << ") — kill landed too late to test anything";

  DataGraph g;
  RecoveryStats stats;
  std::string error;
  auto recovered = RecoverDkIndex(dir, &g, &stats, &error);
  if (!recovered.has_value() && CheckpointStore(dir).List().empty()) {
    // The kill landed before the server finished writing its initial
    // checkpoint: nothing was durable yet, so there is nothing to compare —
    // a correct "recover to empty" outcome, not a durability violation.
    return;
  }
  ASSERT_TRUE(recovered.has_value()) << w.name << ": " << error;
  size_t durable = static_cast<size_t>(stats.last_seq);
  ASSERT_LE(durable, w.ops.size()) << w.name;

  // The uncrashed replica of exactly the durable prefix.
  DataGraph replica_graph = w.original;
  DkIndex replica = DkIndex::Build(&replica_graph, w.reqs);
  for (size_t i = 0; i < durable; ++i) {
    ApplyUpdateOp(&replica, w.ops[i]);
  }

  for (const std::string& probe : w.probes) {
    EXPECT_EQ(
        EvaluateOnIndex(recovered->index(),
                        testing_util::MustParse(probe, g.labels())),
        EvaluateOnIndex(replica.index(), testing_util::MustParse(
                                             probe, replica_graph.labels())))
        << w.name << " probe '" << probe << "' diverged at durable prefix "
        << durable;
  }
  std::string invariant_error;
  EXPECT_TRUE(recovered->index().ValidatePartition(&invariant_error))
      << w.name << ": " << invariant_error;
}

class FaultInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
#ifdef DKI_UNDER_TSAN
    GTEST_SKIP() << "fork-based fault injection is not TSan-compatible";
#endif
  }
};

TEST_F(FaultInjectionTest, XmarkKillsRecoverBitIdentical) {
  XmarkOptions options;
  options.scale = 0.03;
  Workload w = MakeWorkload("xmark", GenerateXmarkGraph(options).graph,
                            8101, 150);
  Rng rng(8102);
  for (int trial = 0; trial < 4; ++trial) {
    std::string dir = FreshDir("xmark_kill_" + std::to_string(trial));
    RunKillTrial(w, dir, rng.UniformInt(1000, 30000));
    if (HasFatalFailure()) return;
  }
}

TEST_F(FaultInjectionTest, NasaKillsRecoverBitIdentical) {
  NasaOptions options;
  options.scale = 0.03;
  Workload w = MakeWorkload("nasa", GenerateNasaGraph(options).graph,
                            8201, 150);
  Rng rng(8202);
  for (int trial = 0; trial < 4; ++trial) {
    std::string dir = FreshDir("nasa_kill_" + std::to_string(trial));
    RunKillTrial(w, dir, rng.UniformInt(1000, 30000));
    if (HasFatalFailure()) return;
  }
}

// ---------------------------------------------------------------------------
// Durability under concurrency (the TSan target): readers race the writer,
// the background checkpointer, and explicit CheckpointNow/SyncWal calls.
// ---------------------------------------------------------------------------

TEST(DurableServerRaceTest, ReadersWriterAndCheckpointerRace) {
  Rng rng(9001);
  DataGraph original = testing_util::RandomGraph(150, 4, 25, &rng);
  LabelRequirements reqs;
  reqs[static_cast<LabelId>(
      rng.UniformInt(2, original.labels().size() - 1))] = 2;
  std::string probe = testing_util::RandomChainQuery(original, 3, &rng);

  std::vector<UpdateOp> ops;
  DataGraph track = original;
  for (int i = 0; i < 80; ++i) {
    NodeId u = static_cast<NodeId>(rng.UniformInt(1, track.NumNodes() - 1));
    NodeId v = static_cast<NodeId>(rng.UniformInt(1, track.NumNodes() - 1));
    if (u == v) continue;
    if (track.HasEdge(u, v)) {
      ops.push_back(UpdateOp::RemoveEdge(u, v));
      track.RemoveEdge(u, v);
    } else {
      ops.push_back(UpdateOp::AddEdge(u, v));
      track.AddEdge(u, v);
    }
  }

  std::string dir = FreshDir("race");
  DataGraph g = original;
  DkIndex dk = DkIndex::Build(&g, reqs);
  QueryServer::Options options;
  options.durability.dir = dir;
  options.durability.sync_every_n = 4;
  options.durability.checkpoint_interval_ms = 1;  // checkpoint aggressively
  options.max_batch = 8;
  QueryServer server(dk, options);

  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      for (int i = 0; i < 30; ++i) {
        auto result = server.Evaluate(probe);
        EXPECT_TRUE(result.has_value());
      }
    });
  }
  std::thread checkpoint_caller([&] {
    for (int i = 0; i < 10; ++i) {
      server.CheckpointNow();
      server.SyncWal();
    }
  });
  for (const UpdateOp& op : ops) {
    ASSERT_TRUE(op.kind == UpdateOp::Kind::kAddEdge
                    ? server.SubmitAddEdge(op.u, op.v)
                    : server.SubmitRemoveEdge(op.u, op.v));
  }
  server.Flush();
  for (std::thread& t : readers) t.join();
  checkpoint_caller.join();
  auto served = server.Evaluate(probe);
  server.Stop();
  ASSERT_TRUE(served.has_value());

  // And the durable state round-trips through recovery.
  DataGraph rg;
  RecoveryStats stats;
  std::string error;
  auto recovered = RecoverDkIndex(dir, &rg, &stats, &error);
  ASSERT_TRUE(recovered.has_value()) << error;
  EXPECT_EQ(stats.last_seq, ops.size());
  EXPECT_EQ(EvaluateOnIndex(recovered->index(),
                            testing_util::MustParse(probe, rg.labels())),
            *served);
}

}  // namespace
}  // namespace dki
