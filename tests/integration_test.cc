// End-to-end pipeline over a realistic dataset: generate an XMark document,
// serialize to XML text, re-parse, convert to a data graph, generate the
// Section 6.1 workload, mine requirements, build all indexes, compare
// answers, run the Section 6.2 update storm, and tune with promote/demote.

#include <gtest/gtest.h>

#include <algorithm>

#include "common/random.h"
#include "datagen/nasa_generator.h"
#include "datagen/xmark_generator.h"
#include "index/ak_index.h"
#include "index/dk_index.h"
#include "index/one_index.h"
#include "query/evaluator.h"
#include "query/load_analyzer.h"
#include "query/workload.h"
#include "tests/test_util.h"
#include "xml/xml_to_graph.h"
#include "xml/xml_writer.h"

namespace dki {
namespace {

TEST(IntegrationTest, XmarkXmlRoundTripPipeline) {
  // Generate -> serialize -> parse -> graph.
  XmarkOptions options;
  options.scale = 0.15;
  XmlDocument doc = GenerateXmarkDocument(options);
  std::string xml = WriteXml(doc);
  XmlToGraphResult loaded;
  std::string error;
  ASSERT_TRUE(LoadXmlAsGraph(xml, XmarkGraphOptions(), &loaded, &error))
      << error;
  DataGraph& g = loaded.graph;
  EXPECT_EQ(loaded.dangling_refs, 0);

  // The text round trip must agree with the direct conversion.
  XmlToGraphResult direct = GenerateXmarkGraph(options);
  EXPECT_EQ(g.NumNodes(), direct.graph.NumNodes());
  EXPECT_EQ(g.NumEdges(), direct.graph.NumEdges());

  // Workload + requirements.
  Rng rng(2003);
  WorkloadOptions wopts;
  wopts.num_queries = 40;
  Workload workload = GenerateWorkload(g, wopts, &rng);
  ASSERT_EQ(workload.queries.size(), 40u);
  LabelRequirements reqs =
      MineRequirementsFromText(workload.queries, g.labels(), nullptr);
  EXPECT_FALSE(reqs.empty());

  // Indexes.
  DataGraph g_dk = g;
  DkIndex dk = DkIndex::Build(&g_dk, reqs);
  DataGraph g_ak = g;
  AkIndex a2 = AkIndex::Build(&g_ak, 2);
  IndexGraph one = OneIndex::Build(&g);

  EXPECT_LT(dk.index().NumIndexNodes(), g.NumNodes());
  EXPECT_LE(dk.index().NumIndexNodes(), one.NumIndexNodes());

  // Every workload query: exact on all indexes, no validation on D(k).
  for (const std::string& text : workload.queries) {
    PathExpression q = testing_util::MustParse(text, g.labels());
    auto truth = EvaluateOnDataGraph(g, q);
    EXPECT_FALSE(truth.empty()) << text;
    EXPECT_EQ(EvaluateOnIndex(one, q), truth) << text;
    EXPECT_EQ(EvaluateOnIndex(a2.index(), q), truth) << text;
    EvalStats dk_stats;
    EXPECT_EQ(EvaluateOnIndex(dk.index(), q, &dk_stats), truth) << text;
    EXPECT_EQ(dk_stats.uncertain_index_nodes, 0) << text;
  }
}

TEST(IntegrationTest, XmarkUpdateStormAndPromotion) {
  XmarkOptions options;
  options.scale = 0.15;
  DataGraph g = GenerateXmarkGraph(options).graph;
  Rng rng(6);
  WorkloadOptions wopts;
  wopts.num_queries = 25;
  Workload workload = GenerateWorkload(g, wopts, &rng);
  LabelRequirements reqs =
      MineRequirementsFromText(workload.queries, g.labels(), nullptr);
  DkIndex dk = DkIndex::Build(&g, reqs);
  int64_t size_before = dk.index().NumIndexNodes();

  // Section 6.2 recipe: add edges between random ID/IDREF label pairs.
  auto pairs = XmarkRefLabelPairs();
  for (int i = 0; i < 50; ++i) {
    const auto& [from_label, to_label] =
        pairs[static_cast<size_t>(rng.UniformInt(
            0, static_cast<int64_t>(pairs.size()) - 1))];
    auto froms = g.NodesWithLabel(g.labels().Find(from_label));
    auto tos = g.NodesWithLabel(g.labels().Find(to_label));
    dk.AddEdge(rng.Pick(froms), rng.Pick(tos));
  }
  EXPECT_EQ(dk.index().NumIndexNodes(), size_before);  // size is stable
  std::string error;
  ASSERT_TRUE(dk.index().ValidatePartition(&error)) << error;
  ASSERT_TRUE(dk.index().ValidateEdges(&error)) << error;
  ASSERT_TRUE(dk.index().ValidateDkConstraint(&error)) << error;

  // Queries remain exact (through validation where needed).
  int64_t validation_visits = 0;
  for (const std::string& text : workload.queries) {
    PathExpression q = testing_util::MustParse(text, g.labels());
    EvalStats stats;
    EXPECT_EQ(EvaluateOnIndex(dk.index(), q, &stats),
              EvaluateOnDataGraph(g, q))
        << text;
    validation_visits += stats.data_nodes_visited;
  }

  // Promotion restores the no-validation property for the workload.
  dk.PromoteBatch(reqs);
  for (const std::string& text : workload.queries) {
    PathExpression q = testing_util::MustParse(text, g.labels());
    EvalStats stats;
    EXPECT_EQ(EvaluateOnIndex(dk.index(), q, &stats),
              EvaluateOnDataGraph(g, q))
        << text;
    EXPECT_EQ(stats.uncertain_index_nodes, 0) << text;
  }
  ASSERT_TRUE(dk.index().ValidateDkConstraint(&error)) << error;
}

TEST(IntegrationTest, NasaPipeline) {
  NasaOptions options;
  options.scale = 0.15;
  DataGraph g = GenerateNasaGraph(options).graph;
  Rng rng(8);
  WorkloadOptions wopts;
  wopts.num_queries = 25;
  Workload workload = GenerateWorkload(g, wopts, &rng);
  LabelRequirements reqs =
      MineRequirementsFromText(workload.queries, g.labels(), nullptr);
  DataGraph g_dk = g;
  DkIndex dk = DkIndex::Build(&g_dk, reqs);
  DataGraph g_ak = g;
  AkIndex a3 = AkIndex::Build(&g_ak, 3);

  for (const std::string& text : workload.queries) {
    PathExpression q = testing_util::MustParse(text, g.labels());
    auto truth = EvaluateOnDataGraph(g, q);
    EXPECT_EQ(EvaluateOnIndex(dk.index(), q), truth) << text;
    EXPECT_EQ(EvaluateOnIndex(a3.index(), q), truth) << text;
  }

  // Demote to half requirements: smaller index, still exact via validation.
  int64_t before = dk.index().NumIndexNodes();
  LabelRequirements halved;
  for (const auto& [label, k] : reqs) halved[label] = k / 2;
  dk.Demote(halved);
  EXPECT_LE(dk.index().NumIndexNodes(), before);
  for (const std::string& text : workload.queries) {
    PathExpression q = testing_util::MustParse(text, g.labels());
    EXPECT_EQ(EvaluateOnIndex(dk.index(), q), EvaluateOnDataGraph(g, q))
        << text;
  }
}

TEST(IntegrationTest, SubgraphAdditionOnXmark) {
  // Insert a second, smaller XMark document into an indexed one.
  XmarkOptions options;
  options.scale = 0.1;
  DataGraph g = GenerateXmarkGraph(options).graph;
  XmarkOptions hopts;
  hopts.scale = 0.05;
  hopts.seed = 99;
  DataGraph h = GenerateXmarkGraph(hopts).graph;

  Rng rng(10);
  WorkloadOptions wopts;
  wopts.num_queries = 15;
  Workload workload = GenerateWorkload(g, wopts, &rng);
  LabelRequirements reqs =
      MineRequirementsFromText(workload.queries, g.labels(), nullptr);
  DkIndex dk = DkIndex::Build(&g, reqs);
  int64_t nodes_before = g.NumNodes();
  dk.AddSubgraph(h);
  EXPECT_EQ(g.NumNodes(), nodes_before + h.NumNodes() - 1);

  std::string error;
  ASSERT_TRUE(dk.index().ValidatePartition(&error)) << error;
  ASSERT_TRUE(dk.index().ValidateEdges(&error)) << error;
  ASSERT_TRUE(dk.index().ValidateDkConstraint(&error)) << error;
  for (const std::string& text : workload.queries) {
    PathExpression q = testing_util::MustParse(text, g.labels());
    EXPECT_EQ(EvaluateOnIndex(dk.index(), q), EvaluateOnDataGraph(g, q))
        << text;
  }
}

}  // namespace
}  // namespace dki
