// Cross-checks the compiled automaton and the graph evaluator against a
// brute-force interpreter of the path-expression AST: random expressions,
// exhaustive words over a small alphabet, and random graphs.

#include <gtest/gtest.h>

#include <set>
#include <span>
#include <string>
#include <vector>

#include "common/random.h"
#include "graph/graph_algos.h"
#include "pathexpr/nfa.h"
#include "pathexpr/parser.h"
#include "query/evaluator.h"
#include "tests/test_util.h"

namespace dki {
namespace {

// --- brute-force language membership over the AST ------------------------

using Word = std::vector<LabelId>;

bool BruteMatches(const AstNode& n, std::span<const LabelId> word,
                  const LabelTable& labels);

bool BruteMatchesStar(const AstNode& child, std::span<const LabelId> word,
                      const LabelTable& labels) {
  if (word.empty()) return true;
  for (size_t i = 1; i <= word.size(); ++i) {
    if (BruteMatches(child, word.subspan(0, i), labels) &&
        BruteMatchesStar(child, word.subspan(i), labels)) {
      return true;
    }
  }
  return false;
}

bool BruteMatches(const AstNode& n, std::span<const LabelId> word,
                  const LabelTable& labels) {
  switch (n.kind) {
    case AstKind::kLabel: {
      LabelId id = labels.Find(n.label);
      return word.size() == 1 && id != kInvalidLabel && word[0] == id;
    }
    case AstKind::kWildcard:
      return word.size() == 1;
    case AstKind::kSeq:
      for (size_t i = 0; i <= word.size(); ++i) {
        if (BruteMatches(*n.left, word.subspan(0, i), labels) &&
            BruteMatches(*n.right, word.subspan(i), labels)) {
          return true;
        }
      }
      return false;
    case AstKind::kAlt:
      return BruteMatches(*n.left, word, labels) ||
             BruteMatches(*n.right, word, labels);
    case AstKind::kStar:
      return BruteMatchesStar(*n.left, word, labels);
    case AstKind::kPlus:
      // child . child* — the first piece may be empty when the child is
      // nullable (x?+ accepts the empty word).
      for (size_t i = 0; i <= word.size(); ++i) {
        if (BruteMatches(*n.left, word.subspan(0, i), labels) &&
            BruteMatchesStar(*n.left, word.subspan(i), labels)) {
          return true;
        }
      }
      return false;
    case AstKind::kOpt:
      return word.empty() || BruteMatches(*n.left, word, labels);
  }
  return false;
}

// --- reference NFA simulation --------------------------------------------

bool AutomatonAccepts(const Automaton& a, const Word& word) {
  std::set<int> states(a.start_states().begin(), a.start_states().end());
  for (LabelId symbol : word) {
    std::set<int> next;
    std::vector<int> moved;
    for (int q : states) {
      moved.clear();
      a.Move(q, symbol, &moved);
      next.insert(moved.begin(), moved.end());
    }
    states = std::move(next);
    if (states.empty()) return false;
  }
  for (int q : states) {
    if (a.is_accept(q)) return true;
  }
  return false;
}

// --- random expressions ----------------------------------------------------

AstPtr RandomAst(Rng* rng, int budget, bool allow_star) {
  if (budget <= 1 || rng->Bernoulli(0.35)) {
    if (rng->Bernoulli(0.2)) return AstNode::Wildcard();
    return AstNode::Label(std::string(
        1, static_cast<char>('a' + rng->UniformInt(0, 2))));
  }
  switch (rng->UniformInt(0, allow_star ? 4 : 2)) {
    case 0:
      return AstNode::Seq(RandomAst(rng, budget / 2, allow_star),
                          RandomAst(rng, budget - budget / 2, allow_star));
    case 1:
      return AstNode::Alt(RandomAst(rng, budget / 2, allow_star),
                          RandomAst(rng, budget - budget / 2, allow_star));
    case 2:
      return AstNode::Opt(RandomAst(rng, budget - 1, allow_star));
    case 3:
      return AstNode::Star(RandomAst(rng, budget - 1, allow_star));
    default:
      return AstNode::Plus(RandomAst(rng, budget - 1, allow_star));
  }
}

class RegexProperty : public ::testing::TestWithParam<int> {};

TEST_P(RegexProperty, AutomatonEqualsBruteForceOnAllShortWords) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  LabelTable labels;
  LabelId a = labels.Intern("a");
  LabelId b = labels.Intern("b");
  LabelId c = labels.Intern("c");
  const std::vector<LabelId> alphabet = {a, b, c};

  for (int trial = 0; trial < 30; ++trial) {
    AstPtr ast = RandomAst(&rng, 6, /*allow_star=*/true);
    Automaton m = CompileAst(*ast, labels);
    Automaton rev = m.Reverse();

    // Exhaustive words up to length 4 (121 words).
    std::vector<Word> words = {{}};
    for (size_t begin = 0, len = 0; len < 4; ++len) {
      size_t end = words.size();
      for (size_t w = begin; w < end; ++w) {
        for (LabelId l : alphabet) {
          Word longer = words[w];
          longer.push_back(l);
          words.push_back(std::move(longer));
        }
      }
      begin = end;
    }
    for (const Word& word : words) {
      bool expected = BruteMatches(*ast, word, labels);
      EXPECT_EQ(AutomatonAccepts(m, word), expected)
          << AstToString(*ast) << " on a word of length " << word.size();
      Word reversed(word.rbegin(), word.rend());
      EXPECT_EQ(AutomatonAccepts(rev, reversed), expected)
          << "reverse of " << AstToString(*ast);
    }
  }
}

TEST_P(RegexProperty, MaxWordLengthAgreesWithBruteForceOnStarFree) {
  Rng rng(static_cast<uint64_t>(GetParam()) + 1000);
  LabelTable labels;
  labels.Intern("a");
  labels.Intern("b");
  labels.Intern("c");
  const std::vector<LabelId> alphabet = {labels.Find("a"), labels.Find("b"),
                                         labels.Find("c")};
  for (int trial = 0; trial < 30; ++trial) {
    AstPtr ast = RandomAst(&rng, 5, /*allow_star=*/false);
    Automaton m = CompileAst(*ast, labels);
    int reported = m.MaxWordLength();
    // Star-free with budget 5 keeps the longest word within 6 symbols.
    int longest = -1;
    std::vector<Word> frontier = {{}};
    for (int len = 0; len <= 6; ++len) {
      for (const Word& word : frontier) {
        if (!word.empty() || len == 0) {
          if (BruteMatches(*ast, word, labels) &&
              static_cast<int>(word.size()) > longest) {
            longest = static_cast<int>(word.size());
          }
        }
      }
      std::vector<Word> next;
      for (const Word& word : frontier) {
        for (LabelId l : alphabet) {
          Word longer = word;
          longer.push_back(l);
          next.push_back(std::move(longer));
        }
      }
      frontier = std::move(next);
    }
    if (longest <= 0) {
      // Language empty or only the (unmatchable) empty word.
      EXPECT_TRUE(reported == -2 || reported == 0 || reported == longest)
          << AstToString(*ast) << " reported " << reported;
    } else {
      EXPECT_EQ(reported, longest) << AstToString(*ast);
    }
  }
}

TEST_P(RegexProperty, EvaluatorEqualsPathEnumerationOnRandomGraphs) {
  Rng rng(static_cast<uint64_t>(GetParam()) + 2000);
  DataGraph g = testing_util::RandomGraph(25, 3, 6, &rng);
  LabelTable& labels = g.labels();

  for (int trial = 0; trial < 15; ++trial) {
    // Star-free expressions have bounded words: enumerate all incoming
    // label paths up to that bound per node and test membership.
    AstPtr ast = RandomAst(&rng, 5, /*allow_star=*/false);
    Automaton m = CompileAst(*ast, labels);
    int max_len = m.MaxWordLength();
    if (max_len <= 0) continue;

    std::string error;
    auto query = PathExpression::Parse(AstToString(*ast), labels, &error);
    ASSERT_TRUE(query.has_value())
        << AstToString(*ast) << ": " << error;
    auto got = EvaluateOnDataGraph(g, *query);

    std::vector<NodeId> expected;
    for (NodeId n = 0; n < g.NumNodes(); ++n) {
      bool matches = false;
      for (int len = 1; len <= max_len && !matches; ++len) {
        for (const auto& path : IncomingLabelPaths(g, n, len, 100000)) {
          if (BruteMatches(*ast, path, labels)) {
            matches = true;
            break;
          }
        }
      }
      if (matches) expected.push_back(n);
    }
    EXPECT_EQ(got, expected) << AstToString(*ast);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RegexProperty, ::testing::Values(1, 2, 3, 4),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "seed" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace dki
