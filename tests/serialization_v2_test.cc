// Differential tests of the binary v2 persistence format against the text
// v1 it replaces (io/serialization.h): random graphs plus the paper's two
// workloads round-trip bit-identically through either format, the v2
// checkpoint pipeline streams with O(1) transient memory, corruption
// (truncation, byte flips) is always detected, and a SIGKILL landing
// mid-checkpoint-write never damages recovery.

#include <gtest/gtest.h>

#include <algorithm>
#include <csignal>
#include <cstdint>
#include <cstdlib>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include "common/crc32.h"
#include "common/random.h"
#include "datagen/nasa_generator.h"
#include "datagen/xmark_generator.h"
#include "graph/data_graph.h"
#include "index/dk_index.h"
#include "io/byte_sink.h"
#include "io/fs_util.h"
#include "io/serialization.h"
#include "query/evaluator.h"
#include "serve/checkpoint.h"
#include "tests/test_util.h"

#if defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define DKI_UNDER_TSAN 1
#endif
#endif
#if defined(__SANITIZE_THREAD__)
#define DKI_UNDER_TSAN 1
#endif

namespace dki {
namespace {

std::string FreshDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "dki_v2_" + name + "_" +
                    std::to_string(::getpid());
  if (PathExists(dir)) {
    std::string cmd = "rm -rf '" + dir + "'";
    EXPECT_EQ(std::system(cmd.c_str()), 0);
  }
  std::string error;
  EXPECT_TRUE(EnsureDir(dir, &error)) << error;
  return dir;
}

void ExpectSameGraph(const DataGraph& got, const DataGraph& want) {
  ASSERT_EQ(got.NumNodes(), want.NumNodes());
  ASSERT_EQ(got.NumEdges(), want.NumEdges());
  for (NodeId n = 0; n < want.NumNodes(); ++n) {
    ASSERT_EQ(got.label_name(n), want.label_name(n)) << "node " << n;
    ASSERT_EQ(got.children(n), want.children(n)) << "node " << n;
    // Both formats emit edges in ascending source-node order, so a loaded
    // graph's parent lists are canonicalized even when the original was
    // built with interleaved insertions. Parent order never affects
    // evaluation, so compare as multisets.
    std::vector<NodeId> gp(got.parents(n).begin(), got.parents(n).end());
    std::vector<NodeId> wp(want.parents(n).begin(), want.parents(n).end());
    std::sort(gp.begin(), gp.end());
    std::sort(wp.begin(), wp.end());
    ASSERT_EQ(gp, wp) << "node " << n;
  }
}

void ExpectSameIndex(const IndexGraph& got, const IndexGraph& want) {
  ASSERT_EQ(got.NumIndexNodes(), want.NumIndexNodes());
  for (IndexNodeId i = 0; i < want.NumIndexNodes(); ++i) {
    ASSERT_EQ(got.label(i), want.label(i)) << "index node " << i;
    ASSERT_EQ(got.k(i), want.k(i)) << "index node " << i;
    ASSERT_EQ(got.extent(i), want.extent(i)) << "index node " << i;
    ASSERT_EQ(got.children(i), want.children(i)) << "index node " << i;
  }
}

std::string V2Payload(const DkIndex& dk, const DataGraph& g) {
  std::string payload;
  StringSink sink(&payload);
  EXPECT_TRUE(
      SaveDkIndexPartsV2(g, dk.index(), dk.effective_requirements(), &sink));
  return payload;
}

std::string V1Payload(const DkIndex& dk, const DataGraph& g) {
  std::ostringstream out;
  EXPECT_TRUE(
      SaveDkIndexParts(g, dk.index(), dk.effective_requirements(), &out));
  return out.str();
}

TEST(SerializationV2Test, GraphRoundTripsRandomGraphs) {
  Rng rng(71);
  for (int trial = 0; trial < 20; ++trial) {
    DataGraph g = testing_util::RandomGraph(
        static_cast<int>(rng.UniformInt(1, 400)),
        static_cast<int>(rng.UniformInt(2, 12)),
        static_cast<int>(rng.UniformInt(0, 80)), &rng);
    std::string buf;
    StringSink sink(&buf);
    ASSERT_TRUE(SaveGraphV2(g, &sink));
    EXPECT_TRUE(LooksLikeGraphV2(buf));

    size_t pos = 0;
    DataGraph loaded;
    std::string error;
    ASSERT_TRUE(LoadGraphV2(buf, &pos, &loaded, &error)) << error;
    EXPECT_EQ(pos, buf.size());
    ExpectSameGraph(loaded, g);
  }
}

TEST(SerializationV2Test, DkIndexDifferentialRandom) {
  Rng rng(73);
  for (int trial = 0; trial < 10; ++trial) {
    DataGraph g = testing_util::RandomGraph(300, 6, 60, &rng);
    LabelRequirements reqs;
    // Require extra depth on labels that actually occur in this graph.
    for (int i = 0; i < 2; ++i) {
      const NodeId n =
          static_cast<NodeId>(rng.UniformInt(1, g.NumNodes() - 1));
      reqs[g.label(n)] = static_cast<int>(rng.UniformInt(0, 3));
    }
    DkIndex dk = DkIndex::Build(&g, reqs);

    const std::string v2 = V2Payload(dk, g);
    const std::string v1 = V1Payload(dk, g);

    // Both payloads decode through the sniffing entry point to one state.
    DataGraph g_v2, g_v1;
    std::string error;
    auto dk_v2 = LoadDkIndexAny(v2, &g_v2, &error);
    ASSERT_TRUE(dk_v2.has_value()) << error;
    auto dk_v1 = LoadDkIndexAny(v1, &g_v1, &error);
    ASSERT_TRUE(dk_v1.has_value()) << error;

    ExpectSameGraph(g_v2, g);
    ExpectSameIndex(dk_v2->index(), dk.index());
    ExpectSameIndex(dk_v2->index(), dk_v1->index());
    EXPECT_EQ(dk_v2->effective_requirements(),
              dk.effective_requirements());
    std::string invariant;
    EXPECT_TRUE(dk_v2->index().ValidatePartition(&invariant)) << invariant;
  }
}

// The paper's workloads: identical recovered state through either format,
// and the acceptance-criterion size win (v2 <= 1/3 of v1) on both.
void RunWorkloadDifferential(DataGraph g, const std::string& name) {
  LabelRequirements reqs;  // defaults: a 1-index-style baseline
  DkIndex dk = DkIndex::Build(&g, reqs);

  const std::string v2 = V2Payload(dk, g);
  const std::string v1 = V1Payload(dk, g);
  EXPECT_LE(v2.size() * 3, v1.size())
      << name << ": v2 " << v2.size() << "B vs v1 " << v1.size() << "B";

  DataGraph g_v2;
  std::string error;
  auto dk_v2 = LoadDkIndexAny(v2, &g_v2, &error);
  ASSERT_TRUE(dk_v2.has_value()) << name << ": " << error;
  ExpectSameGraph(g_v2, g);
  ExpectSameIndex(dk_v2->index(), dk.index());
}

TEST(SerializationV2Test, XmarkDifferentialAndSizeWin) {
  XmarkOptions options;
  options.scale = 0.25;
  RunWorkloadDifferential(GenerateXmarkGraph(options).graph, "xmark");
}

TEST(SerializationV2Test, NasaDifferentialAndSizeWin) {
  NasaOptions options;
  options.scale = 0.25;
  RunWorkloadDifferential(GenerateNasaGraph(options).graph, "nasa");
}

TEST(SerializationV2Test, TrailingBytesAfterV2PayloadRejected) {
  Rng rng(79);
  DataGraph g = testing_util::RandomGraph(50, 4, 10, &rng);
  DkIndex dk = DkIndex::Build(&g, {});
  std::string payload = V2Payload(dk, g);
  payload.push_back('\0');
  DataGraph out;
  std::string error;
  EXPECT_FALSE(LoadDkIndexAny(payload, &out, &error).has_value());
  EXPECT_NE(error.find("trailing"), std::string::npos) << error;
}

TEST(SerializationV2Test, TruncationSweepNeverLoads) {
  Rng rng(83);
  DataGraph g = testing_util::RandomGraph(120, 5, 25, &rng);
  DkIndex dk = DkIndex::Build(&g, {});
  const std::string payload = V2Payload(dk, g);
  // Every strict prefix must be rejected (malformed, never a crash). Sweep
  // densely near the start and the end, sparsely through the middle.
  for (size_t cut = 0; cut < payload.size();
       cut += (cut < 64 || cut + 64 > payload.size()) ? 1 : 37) {
    DataGraph out;
    std::string error;
    EXPECT_FALSE(
        LoadDkIndexAny(payload.substr(0, cut), &out, &error).has_value())
        << "prefix of " << cut << " bytes unexpectedly loaded";
  }
}

// ---------------------------------------------------------------------------
// v2 checkpoint pipeline (serve/checkpoint.h).
// ---------------------------------------------------------------------------

TEST(CheckpointV2Test, WritesV2AndRoundTrips) {
  std::string dir = FreshDir("roundtrip");
  DataGraph g = testing_util::BuildMovieGraph();
  LabelRequirements reqs;
  reqs[g.labels().Find("title")] = 2;
  DkIndex dk = DkIndex::Build(&g, reqs);

  CheckpointStore store(dir);
  std::string error;
  ASSERT_TRUE(
      store.Write(g, dk.index(), dk.effective_requirements(), 17, &error))
      << error;

  // The file on disk is the v2 layout.
  auto files = store.List();
  ASSERT_EQ(files.size(), 1u);
  std::string contents;
  ASSERT_TRUE(ReadFileToString(files[0].path, &contents, &error)) << error;
  EXPECT_EQ(contents.substr(0, 18), "dki-checkpoint v2\n");

  DataGraph loaded;
  uint64_t seq = 0;
  bool fallback = true;
  auto recovered = store.LoadNewestValid(&loaded, &seq, &fallback, &error);
  ASSERT_TRUE(recovered.has_value()) << error;
  EXPECT_EQ(seq, 17u);
  EXPECT_FALSE(fallback);
  ExpectSameGraph(loaded, g);
  ExpectSameIndex(recovered->index(), dk.index());
}

TEST(CheckpointV2Test, LoadsLegacyV1Checkpoints) {
  std::string dir = FreshDir("v1compat");
  DataGraph g = testing_util::BuildMovieGraph();
  DkIndex dk = DkIndex::Build(&g, {});

  // A v1 file as the previous release wrote it.
  std::ostringstream body;
  ASSERT_TRUE(
      SaveDkIndexParts(g, dk.index(), dk.effective_requirements(), &body));
  std::string payload = body.str();
  std::ostringstream out;
  out << "dki-checkpoint v1\n"
      << "seq 9\n"
      << "payload_bytes " << payload.size() << "\n"
      << "payload_crc " << Crc32(payload) << "\n"
      << payload;
  std::string error;
  ASSERT_TRUE(AtomicWriteFile(dir + "/checkpoint-9.dki", out.str(), &error))
      << error;

  CheckpointStore store(dir);
  DataGraph loaded;
  uint64_t seq = 0;
  bool fallback = true;
  auto recovered = store.LoadNewestValid(&loaded, &seq, &fallback, &error);
  ASSERT_TRUE(recovered.has_value()) << error;
  EXPECT_EQ(seq, 9u);
  ExpectSameIndex(recovered->index(), dk.index());

  // A newer v2 write coexists with it: mixed retention recovers newest.
  ASSERT_TRUE(
      store.Write(g, dk.index(), dk.effective_requirements(), 12, &error))
      << error;
  auto newest = store.LoadNewestValid(&loaded, &seq, &fallback, &error);
  ASSERT_TRUE(newest.has_value()) << error;
  EXPECT_EQ(seq, 12u);
}

TEST(CheckpointV2Test, StreamingWriteHasBoundedTransientMemory) {
  std::string dir = FreshDir("o1peak");
  // Large enough that the encoded checkpoint spans many buffer-fulls even
  // after varint/delta compression (scale 4 encodes to ~350 KB).
  XmarkOptions options;
  options.scale = 4.0;
  DataGraph g = GenerateXmarkGraph(options).graph;
  DkIndex dk = DkIndex::Build(&g, {});

  CheckpointStore store(dir);
  std::string error;
  ASSERT_TRUE(
      store.Write(g, dk.index(), dk.effective_requirements(), 1, &error))
      << error;

  // The checkpoint is many buffer-fulls long, yet the writer's buffer
  // high-water mark stays at one fixed buffer — the O(1) transient-memory
  // guarantee that replaced the old serialize-whole-state-into-a-string
  // path (whose peak was ~4x the state size).
  auto files = store.List();
  ASSERT_EQ(files.size(), 1u);
  std::string contents;
  ASSERT_TRUE(ReadFileToString(files[0].path, &contents, &error)) << error;
  ASSERT_GT(contents.size(), 4 * AtomicFileWriter::kBufferBytes);
  EXPECT_GT(store.last_write_peak_buffer_bytes(), 0);
  EXPECT_LE(store.last_write_peak_buffer_bytes(),
            static_cast<int64_t>(AtomicFileWriter::kBufferBytes));
}

TEST(CheckpointV2Test, TruncationSweepNeverValidates) {
  std::string dir = FreshDir("trunc");
  DataGraph g = testing_util::BuildMovieGraph();
  DkIndex dk = DkIndex::Build(&g, {});
  CheckpointStore store(dir);
  std::string error;
  ASSERT_TRUE(
      store.Write(g, dk.index(), dk.effective_requirements(), 3, &error))
      << error;
  const std::string path = store.List()[0].path;
  std::string good;
  ASSERT_TRUE(ReadFileToString(path, &good, &error)) << error;

  for (size_t keep = 0; keep < good.size();
       keep += (keep < 40 || keep + 40 > good.size()) ? 1 : 13) {
    ASSERT_TRUE(AtomicWriteFile(path, good.substr(0, keep), &error)) << error;
    DataGraph out;
    uint64_t seq = 0;
    bool fallback = false;
    EXPECT_FALSE(
        store.LoadNewestValid(&out, &seq, &fallback, &error).has_value())
        << "truncation to " << keep << " bytes validated";
  }
  // Restoring the full bytes validates again (the sweep itself is sound).
  ASSERT_TRUE(AtomicWriteFile(path, good, &error)) << error;
  DataGraph out;
  uint64_t seq = 0;
  bool fallback = false;
  EXPECT_TRUE(
      store.LoadNewestValid(&out, &seq, &fallback, &error).has_value())
      << error;
}

TEST(CheckpointV2Test, ByteFlipSweepNeverValidates) {
  std::string dir = FreshDir("flip");
  DataGraph g = testing_util::BuildMovieGraph();
  DkIndex dk = DkIndex::Build(&g, {});
  CheckpointStore store(dir);
  std::string error;
  ASSERT_TRUE(
      store.Write(g, dk.index(), dk.effective_requirements(), 3, &error))
      << error;
  const std::string path = store.List()[0].path;
  std::string good;
  ASSERT_TRUE(ReadFileToString(path, &good, &error)) << error;

  // Flip one bit at a time from the payload start through the footer (the
  // CRC's coverage; the seq header line is consciously outside it, as in
  // v1). Every flip must be caught.
  const size_t header_end = good.find('\n', good.find('\n') + 1) + 1;
  ASSERT_GT(header_end, 18u);  // past "dki-checkpoint v2\nseq ...\n"
  Rng rng(89);
  for (size_t at = header_end; at < good.size();
       at += static_cast<size_t>(rng.UniformInt(1, 7))) {
    std::string bad = good;
    bad[at] = static_cast<char>(bad[at] ^ (1 << rng.UniformInt(0, 7)));
    ASSERT_TRUE(AtomicWriteFile(path, bad, &error)) << error;
    DataGraph out;
    uint64_t seq = 0;
    bool fallback = false;
    EXPECT_FALSE(
        store.LoadNewestValid(&out, &seq, &fallback, &error).has_value())
        << "bit flip at offset " << at << " validated";
  }
}

// SIGKILL landing inside CheckpointStore::Write must never damage what was
// durable before, and whatever survives must validate or be skipped.
TEST(CheckpointV2Test, KillMidWriteNeverCorruptsRecovery) {
#ifdef DKI_UNDER_TSAN
  GTEST_SKIP() << "fork-based fault injection is not TSan-compatible";
#endif
  std::string dir = FreshDir("midwrite");
  XmarkOptions options;
  options.scale = 0.25;
  DataGraph g = GenerateXmarkGraph(options).graph;
  DkIndex dk = DkIndex::Build(&g, {});

  CheckpointStore store(dir);
  std::string error;
  ASSERT_TRUE(
      store.Write(g, dk.index(), dk.effective_requirements(), 1, &error))
      << error;

  Rng rng(97);
  for (int trial = 0; trial < 8; ++trial) {
    ::pid_t pid = ::fork();
    ASSERT_GE(pid, 0) << "fork failed";
    if (pid == 0) {
      // Child: rewrite checkpoints forever; the parent's SIGKILL lands at
      // an arbitrary point inside some Write (header, payload, footer,
      // fsync, or rename).
      CheckpointStore child_store(dir);
      std::string child_error;
      for (uint64_t seq = 2;; ++seq) {
        if (!child_store.Write(g, dk.index(), dk.effective_requirements(),
                               seq, &child_error)) {
          ::_exit(2);
        }
      }
    }
    ::usleep(static_cast<useconds_t>(rng.UniformInt(500, 40000)));
    ASSERT_EQ(::kill(pid, SIGKILL), 0);
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL);

    // Recovery after the kill: some retained checkpoint must validate
    // (seq 1 is always durable) and decode to the exact source state.
    DataGraph loaded;
    uint64_t seq = 0;
    bool fallback = false;
    auto recovered =
        store.LoadNewestValid(&loaded, &seq, &fallback, &error);
    ASSERT_TRUE(recovered.has_value())
        << "trial " << trial << ": " << error;
    ASSERT_GE(seq, 1u);
    ExpectSameGraph(loaded, g);
    ExpectSameIndex(recovered->index(), dk.index());
  }
}

}  // namespace
}  // namespace dki
