#include "index/ak_index.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/random.h"
#include "index/one_index.h"
#include "query/evaluator.h"
#include "tests/test_util.h"

namespace dki {
namespace {

TEST(AkIndexTest, A0IsLabelSplit) {
  DataGraph g = testing_util::BuildMovieGraph();
  AkIndex a0 = AkIndex::Build(&g, 0);
  EXPECT_EQ(a0.index().NumIndexNodes(), g.labels().size());
}

TEST(AkIndexTest, SizeGrowsWithK) {
  Rng rng(41);
  DataGraph g = testing_util::RandomGraph(300, 4, 60, &rng);
  int64_t prev = 0;
  for (int k = 0; k <= 5; ++k) {
    AkIndex index = AkIndex::Build(&g, k);
    EXPECT_GE(index.index().NumIndexNodes(), prev);
    prev = index.index().NumIndexNodes();
    std::string error;
    EXPECT_TRUE(index.index().ValidatePartition(&error)) << error;
    EXPECT_TRUE(index.index().ValidateEdges(&error)) << error;
  }
  // Large k converges to the 1-index.
  IndexGraph one = OneIndex::Build(&g);
  AkIndex a20 = AkIndex::Build(&g, 20);
  EXPECT_EQ(a20.index().NumIndexNodes(), one.NumIndexNodes());
}

TEST(AkIndexTest, SoundForShortQueriesSafeForAll) {
  Rng rng(43);
  DataGraph g = testing_util::RandomGraph(150, 4, 30, &rng);
  const int k = 2;
  AkIndex ak = AkIndex::Build(&g, k);
  for (int i = 0; i < 30; ++i) {
    int len = static_cast<int>(rng.UniformInt(1, 5));
    std::string text = testing_util::RandomChainQuery(g, len, &rng);
    PathExpression q = testing_util::MustParse(text, g.labels());

    auto truth = EvaluateOnDataGraph(g, q);
    EvalStats stats;
    auto exact = EvaluateOnIndex(ak.index(), q, &stats);
    EXPECT_EQ(exact, truth) << text;  // validation fixes long queries

    // The raw (unvalidated) answer is safe: a superset of the truth.
    auto raw = EvaluateOnIndex(ak.index(), q, nullptr, /*validate=*/false);
    for (NodeId n : truth) {
      EXPECT_TRUE(std::binary_search(raw.begin(), raw.end(), n)) << text;
    }
    // Queries within the soundness horizon need no validation at all.
    if (len - 1 <= k) {
      EXPECT_EQ(stats.uncertain_index_nodes, 0) << text;
    }
  }
}

TEST(AkIndexTest, UpdateKeepsIndexConsistent) {
  Rng rng(47);
  DataGraph g = testing_util::RandomGraph(120, 4, 20, &rng);
  AkIndex ak = AkIndex::Build(&g, 2);
  for (int i = 0; i < 20; ++i) {
    NodeId u = static_cast<NodeId>(rng.UniformInt(1, g.NumNodes() - 1));
    NodeId v = static_cast<NodeId>(rng.UniformInt(1, g.NumNodes() - 1));
    ak.AddEdgeBaseline(u, v);
    std::string error;
    ASSERT_TRUE(ak.index().ValidatePartition(&error)) << error;
    ASSERT_TRUE(ak.index().ValidateEdges(&error)) << error;
  }
}

TEST(AkIndexTest, UpdatePreservesQueryCorrectness) {
  Rng rng(53);
  DataGraph g = testing_util::RandomGraph(100, 4, 15, &rng);
  AkIndex ak = AkIndex::Build(&g, 2);
  for (int i = 0; i < 15; ++i) {
    NodeId u = static_cast<NodeId>(rng.UniformInt(1, g.NumNodes() - 1));
    NodeId v = static_cast<NodeId>(rng.UniformInt(1, g.NumNodes() - 1));
    ak.AddEdgeBaseline(u, v);
  }
  for (int i = 0; i < 20; ++i) {
    int len = static_cast<int>(rng.UniformInt(1, 4));
    std::string text = testing_util::RandomChainQuery(g, len, &rng);
    PathExpression q = testing_util::MustParse(text, g.labels());
    EXPECT_EQ(EvaluateOnIndex(ak.index(), q), EvaluateOnDataGraph(g, q))
        << text;
  }
}

TEST(AkIndexTest, UpdateOnlyGrowsTheIndex) {
  Rng rng(59);
  DataGraph g = testing_util::RandomGraph(150, 4, 25, &rng);
  AkIndex ak = AkIndex::Build(&g, 3);
  int64_t size = ak.index().NumIndexNodes();
  for (int i = 0; i < 10; ++i) {
    NodeId u = static_cast<NodeId>(rng.UniformInt(1, g.NumNodes() - 1));
    NodeId v = static_cast<NodeId>(rng.UniformInt(1, g.NumNodes() - 1));
    ak.AddEdgeBaseline(u, v);
    EXPECT_GE(ak.index().NumIndexNodes(), size);
    size = ak.index().NumIndexNodes();
  }
}

TEST(AkIndexTest, UpdateStatsGrowWithK) {
  // The cost driver of Table 1: deeper propagation for larger k.
  Rng rng(61);
  DataGraph base = testing_util::RandomGraph(400, 4, 80, &rng);
  int64_t scans_small = 0, scans_large = 0;
  {
    DataGraph g = base;
    AkIndex ak = AkIndex::Build(&g, 1);
    Rng edges(7);
    for (int i = 0; i < 10; ++i) {
      NodeId u = static_cast<NodeId>(edges.UniformInt(1, g.NumNodes() - 1));
      NodeId v = static_cast<NodeId>(edges.UniformInt(1, g.NumNodes() - 1));
      scans_small += ak.AddEdgeBaseline(u, v).data_parent_scans;
    }
  }
  {
    DataGraph g = base;
    AkIndex ak = AkIndex::Build(&g, 4);
    Rng edges(7);
    for (int i = 0; i < 10; ++i) {
      NodeId u = static_cast<NodeId>(edges.UniformInt(1, g.NumNodes() - 1));
      NodeId v = static_cast<NodeId>(edges.UniformInt(1, g.NumNodes() - 1));
      scans_large += ak.AddEdgeBaseline(u, v).data_parent_scans;
    }
  }
  EXPECT_GT(scans_large, scans_small);
}

}  // namespace
}  // namespace dki
